#include "transpile/passes.h"

#include <vector>

#include "common/logging.h"

namespace qpc {

namespace {

/** Inverse partner for exact-cancellation purposes, or I when none. */
GateKind
inverseKind(GateKind kind)
{
    switch (kind) {
      case GateKind::X:
      case GateKind::Y:
      case GateKind::Z:
      case GateKind::H:
      case GateKind::CX:
      case GateKind::CZ:
      case GateKind::SWAP:
        return kind;
      case GateKind::S:
        return GateKind::Sdg;
      case GateKind::Sdg:
        return GateKind::S;
      case GateKind::T:
        return GateKind::Tdg;
      case GateKind::Tdg:
        return GateKind::T;
      default:
        return GateKind::I;
    }
}

/** Rebuild the op list without the erased entries. */
void
compact(Circuit& circuit, const std::vector<bool>& erased)
{
    std::vector<GateOp> kept;
    kept.reserve(circuit.ops().size());
    for (size_t i = 0; i < circuit.ops().size(); ++i)
        if (!erased[i])
            kept.push_back(circuit.ops()[i]);
    circuit.mutableOps() = std::move(kept);
}

} // namespace

int
mergeRotations(Circuit& circuit, bool commute_through_two_qubit)
{
    auto& ops = circuit.mutableOps();
    const int n = circuit.numQubits();
    // Per qubit: index of a pending (still mergeable) rotation, or -1.
    std::vector<int> pending(n, -1);
    std::vector<bool> erased(ops.size(), false);
    int merges = 0;

    for (size_t i = 0; i < ops.size(); ++i) {
        GateOp& op = ops[i];
        if (gateIsRotation(op.kind)) {
            const int q = op.q0;
            const int j = pending[q];
            if (j >= 0 && ops[j].kind == op.kind) {
                if (auto sum = tryAdd(ops[j].angle, op.angle)) {
                    ops[j].angle = *sum;
                    erased[i] = true;
                    ++merges;
                    continue;
                }
            }
            pending[q] = static_cast<int>(i);
            continue;
        }

        if (op.arity() == 1) {
            pending[op.q0] = -1;
            continue;
        }

        // Two-qubit gate: selectively keep commuting pendings.
        auto keeps = [&](int q) {
            if (!commute_through_two_qubit)
                return false;
            const int j = pending[q];
            if (j < 0)
                return false;
            const GateKind pk = ops[j].kind;
            switch (op.kind) {
              case GateKind::CX:
                // Rz commutes with the control; Rx with the target.
                if (q == op.q0)
                    return pk == GateKind::Rz;
                return pk == GateKind::Rx;
              case GateKind::CZ:
                // CZ is diagonal; Rz commutes on both sides.
                return pk == GateKind::Rz;
              default:
                return false;
            }
        };
        if (!keeps(op.q0))
            pending[op.q0] = -1;
        if (!keeps(op.q1))
            pending[op.q1] = -1;
    }

    if (merges > 0)
        compact(circuit, erased);
    return merges;
}

int
cancelInverses(Circuit& circuit)
{
    auto& ops = circuit.mutableOps();
    const int n = circuit.numQubits();
    // Per qubit: index of the latest surviving op touching it, or -1.
    std::vector<int> last(n, -1);
    std::vector<bool> erased(ops.size(), false);
    int removed = 0;

    for (size_t i = 0; i < ops.size(); ++i) {
        const GateOp& op = ops[i];
        const GateKind partner = inverseKind(op.kind);

        if (op.arity() == 1) {
            const int q = op.q0;
            const int j = last[q];
            if (partner != GateKind::I && j >= 0 && !erased[j] &&
                ops[j].kind == partner && ops[j].arity() == 1) {
                erased[i] = true;
                erased[j] = true;
                removed += 2;
                last[q] = -1;
                continue;
            }
            last[q] = static_cast<int>(i);
            continue;
        }

        const int a = op.q0;
        const int b = op.q1;
        const int j = last[a];
        bool cancelled = false;
        if (partner != GateKind::I && j >= 0 && j == last[b] &&
            !erased[j] && ops[j].kind == op.kind) {
            const bool ordered_match = ops[j].q0 == a && ops[j].q1 == b;
            const bool unordered_match =
                ops[j].q0 == b && ops[j].q1 == a &&
                (op.kind == GateKind::CZ || op.kind == GateKind::SWAP);
            if (ordered_match || unordered_match) {
                erased[i] = true;
                erased[j] = true;
                removed += 2;
                last[a] = -1;
                last[b] = -1;
                cancelled = true;
            }
        }
        if (!cancelled) {
            last[a] = static_cast<int>(i);
            last[b] = static_cast<int>(i);
        }
    }

    if (removed > 0)
        compact(circuit, erased);
    return removed;
}

int
removeTrivialOps(Circuit& circuit)
{
    auto& ops = circuit.mutableOps();
    std::vector<bool> erased(ops.size(), false);
    int removed = 0;
    for (size_t i = 0; i < ops.size(); ++i) {
        const GateOp& op = ops[i];
        const bool trivial =
            op.kind == GateKind::I ||
            (gateIsRotation(op.kind) && op.angle.isZero());
        if (trivial) {
            erased[i] = true;
            ++removed;
        }
    }
    if (removed > 0)
        compact(circuit, erased);
    return removed;
}

int
optimizeCircuit(Circuit& circuit, const OptimizeOptions& options)
{
    int total = 0;
    for (int round = 0; round < options.maxRounds; ++round) {
        int changed = 0;
        changed += mergeRotations(circuit, options.commuteThroughTwoQubit);
        changed += cancelInverses(circuit);
        changed += removeTrivialOps(circuit);
        total += changed;
        if (changed == 0)
            break;
    }
    return total;
}

} // namespace qpc
