/**
 * @file
 * ADAM first-order optimizer with learning-rate decay.
 *
 * GRAPE's gradient descent updates the control fields with ADAM; the
 * learning rate and its exponential decay rate are the two
 * hyperparameters that flexible partial compilation pre-tunes per
 * subcircuit (Section 7.2 of the paper).
 */

#ifndef QPC_OPT_ADAM_H
#define QPC_OPT_ADAM_H

#include <functional>
#include <vector>

namespace qpc {

class ThreadPool;

/** The hyperparameters tuned by flexible partial compilation. */
struct AdamHyperParams
{
    double learningRate = 0.01;
    /** Per-step multiplicative decay of the learning rate. */
    double decay = 1.0;

    /** Effective learning rate at a given step. */
    double rateAt(int step) const;
};

/** Stateful ADAM update rule over a flat parameter vector. */
class AdamOptimizer
{
  public:
    AdamOptimizer(int dimension, AdamHyperParams hyper,
                  double beta1 = 0.9, double beta2 = 0.999,
                  double epsilon = 1e-8);

    /** Apply one update in place given the gradient. */
    void step(std::vector<double>& params,
              const std::vector<double>& gradient);

    int stepsTaken() const { return steps_; }

  private:
    AdamHyperParams hyper_;
    double beta1_;
    double beta2_;
    double epsilon_;
    int steps_ = 0;
    std::vector<double> m_;
    std::vector<double> v_;
};

/** Knobs for the derivative-free Adam loop (adamMinimizeFd). */
struct AdamFdOptions
{
    int maxIterations = 100;   ///< Adam steps.
    double fdEpsilon = 1e-6;   ///< Central-difference probe offset.
    /** Stop once the gradient infinity-norm falls below this
     * (0 disables the check). */
    double gradTolerance = 0.0;
    AdamHyperParams hyper;
    /**
     * Optional worker pool: each iteration's 2N central-difference
     * probes evaluate concurrently, with the gradient assembled in
     * coordinate order — results are bit-identical to the serial run
     * at any worker count. The objective must be thread-safe.
     */
    ThreadPool* evalPool = nullptr;
};

/** Outcome of an adamMinimizeFd run. */
struct AdamFdResult
{
    std::vector<double> best;  ///< Final parameter vector.
    double bestValue = 0.0;    ///< Objective at best.
    int iterations = 0;        ///< Adam steps performed.
    int evaluations = 0;       ///< Objective calls performed.
    bool converged = false;    ///< Stopped on gradTolerance.
};

/**
 * Minimize a black-box objective with Adam over central-difference
 * gradients: per iteration the 2N probe points (x +/- eps * e_i) are
 * independent, so they batch through the pool like Nelder-Mead's
 * simplex vertices.
 */
AdamFdResult
adamMinimizeFd(const std::function<double(const std::vector<double>&)>&
                   objective,
               const std::vector<double>& start,
               const AdamFdOptions& options = {});

} // namespace qpc

#endif // QPC_OPT_ADAM_H
