/**
 * @file
 * ADAM first-order optimizer with learning-rate decay.
 *
 * GRAPE's gradient descent updates the control fields with ADAM; the
 * learning rate and its exponential decay rate are the two
 * hyperparameters that flexible partial compilation pre-tunes per
 * subcircuit (Section 7.2 of the paper).
 */

#ifndef QPC_OPT_ADAM_H
#define QPC_OPT_ADAM_H

#include <vector>

namespace qpc {

/** The hyperparameters tuned by flexible partial compilation. */
struct AdamHyperParams
{
    double learningRate = 0.01;
    /** Per-step multiplicative decay of the learning rate. */
    double decay = 1.0;

    /** Effective learning rate at a given step. */
    double rateAt(int step) const;
};

/** Stateful ADAM update rule over a flat parameter vector. */
class AdamOptimizer
{
  public:
    AdamOptimizer(int dimension, AdamHyperParams hyper,
                  double beta1 = 0.9, double beta2 = 0.999,
                  double epsilon = 1e-8);

    /** Apply one update in place given the gradient. */
    void step(std::vector<double>& params,
              const std::vector<double>& gradient);

    int stepsTaken() const { return steps_; }

  private:
    AdamHyperParams hyper_;
    double beta1_;
    double beta2_;
    double epsilon_;
    int steps_ = 0;
    std::vector<double> m_;
    std::vector<double> v_;
};

} // namespace qpc

#endif // QPC_OPT_ADAM_H
