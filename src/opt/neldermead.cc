#include "opt/neldermead.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "opt/batcheval.h"

namespace qpc {

namespace {

double
distance(const std::vector<double>& a, const std::vector<double>& b)
{
    double sum = 0.0;
    for (std::size_t d = 0; d < a.size(); ++d)
        sum += (a[d] - b[d]) * (a[d] - b[d]);
    return std::sqrt(sum);
}

} // namespace

NelderMeadResult
nelderMead(const std::function<double(const std::vector<double>&)>&
               objective,
           const std::vector<double>& start,
           const NelderMeadOptions& options)
{
    const int n = static_cast<int>(start.size());
    fatalIf(n == 0, "nelderMead needs at least one dimension");

    NelderMeadResult result;

    // Simplex of n + 1 vertices: start plus one offset per axis.
    std::vector<std::vector<double>> simplex(n + 1, start);
    for (int i = 0; i < n; ++i)
        simplex[i + 1][i] += options.initialStep;

    // The n + 1 initial vertices are independent: evaluate as one
    // batch (serial in index order without a pool).
    std::vector<double> values(n + 1);
    {
        std::vector<const std::vector<double>*> points(n + 1);
        for (int i = 0; i <= n; ++i)
            points[i] = &simplex[i];
        evaluateBatch(objective, points, values.data(),
                      options.evalPool);
        result.evaluations += n + 1;
    }

    std::vector<int> order(n + 1);
    for (int iter = 0; iter < options.maxIterations; ++iter) {
        // Sort vertex indices by objective value.
        for (int i = 0; i <= n; ++i)
            order[i] = i;
        std::sort(order.begin(), order.end(),
                  [&](int a, int b) { return values[a] < values[b]; });
        const int best = order[0];
        const int worst = order[n];
        const int second_worst = order[n - 1];

        if (std::abs(values[worst] - values[best]) <
            options.fTolerance) {
            result.converged = true;
            break;
        }
        // Counted after the convergence check so `iterations` is
        // exactly the simplex updates performed — and exactly the
        // number of onIteration reports.
        ++result.iterations;

        // Centroid of all vertices except the worst.
        std::vector<double> centroid(n, 0.0);
        for (int i = 0; i <= n; ++i) {
            if (i == worst)
                continue;
            for (int d = 0; d < n; ++d)
                centroid[d] += simplex[i][d];
        }
        for (int d = 0; d < n; ++d)
            centroid[d] /= n;

        auto blend = [&](double factor) {
            std::vector<double> point(n);
            for (int d = 0; d < n; ++d)
                point[d] = centroid[d] +
                           factor * (simplex[worst][d] - centroid[d]);
            return point;
        };

        // Movement metrics are only worth their copies when someone
        // is listening.
        std::vector<double> displaced;
        if (options.onIteration)
            displaced = simplex[worst];
        auto finishIteration = [&](double step_norm) {
            if (!options.onIteration)
                return;
            int b = 0;
            for (int i = 1; i <= n; ++i)
                if (values[i] < values[b])
                    b = i;
            NelderMeadIterationInfo info;
            info.iteration = result.iterations;
            info.bestValue = values[b];
            info.stepNorm = step_norm;
            for (int i = 0; i <= n; ++i)
                info.simplexDiameter = std::max(
                    info.simplexDiameter,
                    distance(simplex[i], simplex[b]));
            options.onIteration(info);
        };

        // Reflection — and, with a pool, the expansion speculated
        // alongside it: the expansion point depends only on the
        // current simplex, not on f_reflected, so both evaluate
        // concurrently and the serial acceptance logic below decides
        // which (if either) is consumed.
        std::vector<double> reflected = blend(-options.reflection);
        std::vector<double> expanded;
        double f_reflected, f_expanded = 0.0;
        bool have_expanded = false;
        if (options.evalPool) {
            expanded = blend(-options.reflection * options.expansion);
            const std::vector<const std::vector<double>*> points = {
                &reflected, &expanded};
            double pair[2];
            evaluateBatch(objective, points, pair, options.evalPool);
            f_reflected = pair[0];
            f_expanded = pair[1];
            have_expanded = true;
        } else {
            f_reflected = objective(reflected);
        }
        ++result.evaluations;

        if (f_reflected < values[best]) {
            // Expansion (already in hand when speculated).
            if (!have_expanded) {
                expanded =
                    blend(-options.reflection * options.expansion);
                f_expanded = objective(expanded);
            }
            ++result.evaluations;
            if (f_expanded < f_reflected) {
                simplex[worst] = std::move(expanded);
                values[worst] = f_expanded;
            } else {
                simplex[worst] = std::move(reflected);
                values[worst] = f_reflected;
            }
            finishIteration(options.onIteration
                                ? distance(displaced, simplex[worst])
                                : 0.0);
            continue;
        }
        // A speculated expansion the serial order would not have
        // evaluated: counted separately so `evaluations` stays equal
        // to the serial run's.
        if (have_expanded)
            ++result.speculativeEvaluations;
        if (f_reflected < values[second_worst]) {
            simplex[worst] = std::move(reflected);
            values[worst] = f_reflected;
            finishIteration(options.onIteration
                                ? distance(displaced, simplex[worst])
                                : 0.0);
            continue;
        }

        // Contraction (outside if the reflected point improved on the
        // worst, inside otherwise).
        const bool outside = f_reflected < values[worst];
        std::vector<double> contracted =
            blend(outside ? -options.contraction : options.contraction);
        const double f_contracted = objective(contracted);
        ++result.evaluations;
        const double f_gate = outside ? f_reflected : values[worst];
        if (f_contracted < f_gate) {
            simplex[worst] = std::move(contracted);
            values[worst] = f_contracted;
            finishIteration(options.onIteration
                                ? distance(displaced, simplex[worst])
                                : 0.0);
            continue;
        }

        // Shrink toward the best vertex: move every non-best vertex
        // first, then evaluate the n new vertices as one batch (slot
        // order keeps the values identical to the serial loop).
        std::vector<std::vector<double>> pre_shrink;
        if (options.onIteration)
            pre_shrink = simplex;
        std::vector<const std::vector<double>*> shrunk;
        std::vector<int> shrunk_idx;
        shrunk.reserve(n);
        shrunk_idx.reserve(n);
        for (int i = 0; i <= n; ++i) {
            if (i == best)
                continue;
            for (int d = 0; d < n; ++d)
                simplex[i][d] =
                    simplex[best][d] +
                    options.shrink * (simplex[i][d] - simplex[best][d]);
            shrunk.push_back(&simplex[i]);
            shrunk_idx.push_back(i);
        }
        std::vector<double> shrunk_values(shrunk.size());
        evaluateBatch(objective, shrunk, shrunk_values.data(),
                      options.evalPool);
        for (std::size_t s = 0; s < shrunk_idx.size(); ++s) {
            values[shrunk_idx[s]] = shrunk_values[s];
            ++result.evaluations;
        }
        if (options.onIteration) {
            double moved = 0.0;
            for (int i = 0; i <= n; ++i)
                moved = std::max(moved,
                                 distance(pre_shrink[i], simplex[i]));
            finishIteration(moved);
        }
    }

    const auto best_it = std::min_element(values.begin(), values.end());
    result.bestValue = *best_it;
    result.best = simplex[best_it - values.begin()];
    return result;
}

} // namespace qpc
