#include "opt/neldermead.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace qpc {

namespace {

double
distance(const std::vector<double>& a, const std::vector<double>& b)
{
    double sum = 0.0;
    for (std::size_t d = 0; d < a.size(); ++d)
        sum += (a[d] - b[d]) * (a[d] - b[d]);
    return std::sqrt(sum);
}

} // namespace

NelderMeadResult
nelderMead(const std::function<double(const std::vector<double>&)>&
               objective,
           const std::vector<double>& start,
           const NelderMeadOptions& options)
{
    const int n = static_cast<int>(start.size());
    fatalIf(n == 0, "nelderMead needs at least one dimension");

    NelderMeadResult result;

    // Simplex of n + 1 vertices: start plus one offset per axis.
    std::vector<std::vector<double>> simplex(n + 1, start);
    for (int i = 0; i < n; ++i)
        simplex[i + 1][i] += options.initialStep;

    std::vector<double> values(n + 1);
    for (int i = 0; i <= n; ++i) {
        values[i] = objective(simplex[i]);
        ++result.evaluations;
    }

    std::vector<int> order(n + 1);
    for (int iter = 0; iter < options.maxIterations; ++iter) {
        // Sort vertex indices by objective value.
        for (int i = 0; i <= n; ++i)
            order[i] = i;
        std::sort(order.begin(), order.end(),
                  [&](int a, int b) { return values[a] < values[b]; });
        const int best = order[0];
        const int worst = order[n];
        const int second_worst = order[n - 1];

        if (std::abs(values[worst] - values[best]) <
            options.fTolerance) {
            result.converged = true;
            break;
        }
        // Counted after the convergence check so `iterations` is
        // exactly the simplex updates performed — and exactly the
        // number of onIteration reports.
        ++result.iterations;

        // Centroid of all vertices except the worst.
        std::vector<double> centroid(n, 0.0);
        for (int i = 0; i <= n; ++i) {
            if (i == worst)
                continue;
            for (int d = 0; d < n; ++d)
                centroid[d] += simplex[i][d];
        }
        for (int d = 0; d < n; ++d)
            centroid[d] /= n;

        auto blend = [&](double factor) {
            std::vector<double> point(n);
            for (int d = 0; d < n; ++d)
                point[d] = centroid[d] +
                           factor * (simplex[worst][d] - centroid[d]);
            return point;
        };

        // Movement metrics are only worth their copies when someone
        // is listening.
        std::vector<double> displaced;
        if (options.onIteration)
            displaced = simplex[worst];
        auto finishIteration = [&](double step_norm) {
            if (!options.onIteration)
                return;
            int b = 0;
            for (int i = 1; i <= n; ++i)
                if (values[i] < values[b])
                    b = i;
            NelderMeadIterationInfo info;
            info.iteration = result.iterations;
            info.bestValue = values[b];
            info.stepNorm = step_norm;
            for (int i = 0; i <= n; ++i)
                info.simplexDiameter = std::max(
                    info.simplexDiameter,
                    distance(simplex[i], simplex[b]));
            options.onIteration(info);
        };

        // Reflection.
        std::vector<double> reflected = blend(-options.reflection);
        const double f_reflected = objective(reflected);
        ++result.evaluations;

        if (f_reflected < values[best]) {
            // Expansion.
            std::vector<double> expanded =
                blend(-options.reflection * options.expansion);
            const double f_expanded = objective(expanded);
            ++result.evaluations;
            if (f_expanded < f_reflected) {
                simplex[worst] = std::move(expanded);
                values[worst] = f_expanded;
            } else {
                simplex[worst] = std::move(reflected);
                values[worst] = f_reflected;
            }
            finishIteration(options.onIteration
                                ? distance(displaced, simplex[worst])
                                : 0.0);
            continue;
        }
        if (f_reflected < values[second_worst]) {
            simplex[worst] = std::move(reflected);
            values[worst] = f_reflected;
            finishIteration(options.onIteration
                                ? distance(displaced, simplex[worst])
                                : 0.0);
            continue;
        }

        // Contraction (outside if the reflected point improved on the
        // worst, inside otherwise).
        const bool outside = f_reflected < values[worst];
        std::vector<double> contracted =
            blend(outside ? -options.contraction : options.contraction);
        const double f_contracted = objective(contracted);
        ++result.evaluations;
        const double f_gate = outside ? f_reflected : values[worst];
        if (f_contracted < f_gate) {
            simplex[worst] = std::move(contracted);
            values[worst] = f_contracted;
            finishIteration(options.onIteration
                                ? distance(displaced, simplex[worst])
                                : 0.0);
            continue;
        }

        // Shrink toward the best vertex.
        std::vector<std::vector<double>> pre_shrink;
        if (options.onIteration)
            pre_shrink = simplex;
        for (int i = 0; i <= n; ++i) {
            if (i == best)
                continue;
            for (int d = 0; d < n; ++d)
                simplex[i][d] =
                    simplex[best][d] +
                    options.shrink * (simplex[i][d] - simplex[best][d]);
            values[i] = objective(simplex[i]);
            ++result.evaluations;
        }
        if (options.onIteration) {
            double moved = 0.0;
            for (int i = 0; i <= n; ++i)
                moved = std::max(moved,
                                 distance(pre_shrink[i], simplex[i]));
            finishIteration(moved);
        }
    }

    const auto best_it = std::min_element(values.begin(), values.end());
    result.bestValue = *best_it;
    result.best = simplex[best_it - values.begin()];
    return result;
}

} // namespace qpc
