/**
 * @file
 * Deterministic batch evaluation of objective points.
 *
 * The classical optimizers (Nelder-Mead's simplex vertices and
 * speculative reflection/expansion pair, Adam's finite-difference
 * probes) produce batches of independent objective evaluations. This
 * helper runs such a batch through an optional ThreadPool with each
 * result written to its caller-assigned slot, so the output — and
 * therefore the optimizer trajectory — is bit-identical whether the
 * batch ran serially or on any number of workers.
 *
 * The objective must be thread-safe and must return the same value
 * for the same point regardless of which thread evaluates it (the
 * kernels layer's bit-compatibility contract gives the numeric stack
 * this property; driver objectives guard their stats with a mutex).
 */

#ifndef QPC_OPT_BATCHEVAL_H
#define QPC_OPT_BATCHEVAL_H

#include <functional>
#include <vector>

namespace qpc {

class ThreadPool;

/**
 * Evaluate `objective` at every point, writing objective(*points[i])
 * to results[i]. Null pool (or a single point) evaluates serially on
 * the calling thread in index order; otherwise the tail of the batch
 * is submitted to the pool while the calling thread takes the head.
 * Either way each slot i holds the same value.
 */
void evaluateBatch(
    const std::function<double(const std::vector<double>&)>& objective,
    const std::vector<const std::vector<double>*>& points,
    double* results, ThreadPool* pool);

} // namespace qpc

#endif // QPC_OPT_BATCHEVAL_H
