#include "opt/batcheval.h"

#include <condition_variable>
#include <mutex>

#include "runtime/threadpool.h"

namespace qpc {

void
evaluateBatch(
    const std::function<double(const std::vector<double>&)>& objective,
    const std::vector<const std::vector<double>*>& points,
    double* results, ThreadPool* pool)
{
    const std::size_t count = points.size();
    if (!pool || count <= 1) {
        for (std::size_t i = 0; i < count; ++i)
            results[i] = objective(*points[i]);
        return;
    }

    std::mutex mu;
    std::condition_variable cv;
    std::size_t pending = count - 1;

    for (std::size_t i = 1; i < count; ++i) {
        const bool accepted = pool->submit([&, i] {
            results[i] = objective(*points[i]);
            std::lock_guard<std::mutex> lock(mu);
            if (--pending == 0)
                cv.notify_one();
        });
        if (!accepted) {
            // Pool shutting down: evaluate inline, same slot.
            results[i] = objective(*points[i]);
            std::lock_guard<std::mutex> lock(mu);
            if (--pending == 0)
                cv.notify_one();
        }
    }
    // The calling thread takes the head instead of idling.
    results[0] = objective(*points[0]);

    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return pending == 0; });
}

} // namespace qpc
