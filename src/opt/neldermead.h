/**
 * @file
 * Nelder-Mead derivative-free minimizer.
 *
 * The classical half of a variational algorithm: the paper (following
 * standard practice) drives VQE / QAOA with an optimizer robust to
 * small amounts of noise, typically Nelder-Mead. This implementation
 * follows the standard reflect / expand / contract / shrink scheme
 * with adaptive simplex initialization.
 */

#ifndef QPC_OPT_NELDERMEAD_H
#define QPC_OPT_NELDERMEAD_H

#include <functional>
#include <vector>

namespace qpc {

class ThreadPool;

/**
 * Progress of one completed simplex update, reported through
 * NelderMeadOptions::onIteration. The step norm and simplex diameter
 * are the optimizer-movement signals consumers use to detect
 * convergence-in-progress — the adaptive quantization drivers trigger
 * grid-refinement rounds once the step norm falls below their
 * threshold (the optimizer has stopped leaping and started homing).
 */
struct NelderMeadIterationInfo
{
    int iteration = 0;        ///< Simplex updates completed so far.
    double bestValue = 0.0;   ///< Objective at the current best vertex.
    /**
     * Euclidean distance the simplex update moved a vertex: the
     * replaced worst vertex to its replacement on reflect / expand /
     * contract, the largest vertex displacement on a shrink. Shrinks
     * toward zero as the optimizer converges.
     */
    double stepNorm = 0.0;
    /** Largest distance from the best vertex to any other vertex. */
    double simplexDiameter = 0.0;
};

/** Termination and shape knobs for Nelder-Mead. */
struct NelderMeadOptions
{
    int maxIterations = 2000;     ///< Hard cap on simplex updates.
    double fTolerance = 1e-9;     ///< Stop when simplex f-spread < tol.
    double initialStep = 0.5;     ///< Per-coordinate simplex offset.
    double reflection = 1.0;
    double expansion = 2.0;
    double contraction = 0.5;
    double shrink = 0.5;
    /** Called after every completed simplex update (movement metrics
     * are only computed when set — the bare loop stays free). Always
     * fired from the calling thread, after the update commits, with
     * the same iteration numbers whether evaluation is serial or
     * pooled — refinement triggers hanging off this callback see one
     * iteration stream regardless of worker count. */
    std::function<void(const NelderMeadIterationInfo&)> onIteration;
    /**
     * Optional worker pool for batched objective evaluation: the
     * initial simplex and shrink vertices evaluate concurrently, and
     * each iteration speculates the expansion point alongside the
     * reflection. Results are reduced in slot order, so the optimizer
     * trajectory — every vertex, value, iteration count, and
     * onIteration report — is bit-identical to the serial run at any
     * worker count. The objective must be thread-safe. Null keeps
     * evaluation on the calling thread.
     */
    ThreadPool* evalPool = nullptr;
};

/** Outcome of a Nelder-Mead run. */
struct NelderMeadResult
{
    std::vector<double> best;     ///< Minimizing point found.
    double bestValue = 0.0;       ///< Objective at best.
    int iterations = 0;           ///< Simplex updates performed.
    /** Objective calls a *serial* run would have made — the pooled
     * run's accounting matches the serial run exactly. */
    int evaluations = 0;
    /** Speculative objective calls (expansion points evaluated
     * alongside their reflection but then not needed). Always zero
     * without an evalPool. */
    int speculativeEvaluations = 0;
    bool converged = false;       ///< Stopped on fTolerance.
};

/**
 * Minimize an objective from an initial point.
 *
 * @param objective Function of a parameter vector.
 * @param start Initial point (defines the dimension).
 */
NelderMeadResult
nelderMead(const std::function<double(const std::vector<double>&)>&
               objective,
           const std::vector<double>& start,
           const NelderMeadOptions& options = {});

} // namespace qpc

#endif // QPC_OPT_NELDERMEAD_H
