/**
 * @file
 * Nelder-Mead derivative-free minimizer.
 *
 * The classical half of a variational algorithm: the paper (following
 * standard practice) drives VQE / QAOA with an optimizer robust to
 * small amounts of noise, typically Nelder-Mead. This implementation
 * follows the standard reflect / expand / contract / shrink scheme
 * with adaptive simplex initialization.
 */

#ifndef QPC_OPT_NELDERMEAD_H
#define QPC_OPT_NELDERMEAD_H

#include <functional>
#include <vector>

namespace qpc {

/** Termination and shape knobs for Nelder-Mead. */
struct NelderMeadOptions
{
    int maxIterations = 2000;     ///< Hard cap on simplex updates.
    double fTolerance = 1e-9;     ///< Stop when simplex f-spread < tol.
    double initialStep = 0.5;     ///< Per-coordinate simplex offset.
    double reflection = 1.0;
    double expansion = 2.0;
    double contraction = 0.5;
    double shrink = 0.5;
};

/** Outcome of a Nelder-Mead run. */
struct NelderMeadResult
{
    std::vector<double> best;     ///< Minimizing point found.
    double bestValue = 0.0;       ///< Objective at best.
    int iterations = 0;           ///< Simplex updates performed.
    int evaluations = 0;          ///< Objective calls performed.
    bool converged = false;       ///< Stopped on fTolerance.
};

/**
 * Minimize an objective from an initial point.
 *
 * @param objective Function of a parameter vector.
 * @param start Initial point (defines the dimension).
 */
NelderMeadResult
nelderMead(const std::function<double(const std::vector<double>&)>&
               objective,
           const std::vector<double>& start,
           const NelderMeadOptions& options = {});

} // namespace qpc

#endif // QPC_OPT_NELDERMEAD_H
