#include "opt/adam.h"

#include <cmath>

#include "common/logging.h"

namespace qpc {

double
AdamHyperParams::rateAt(int step) const
{
    return learningRate * std::pow(decay, step);
}

AdamOptimizer::AdamOptimizer(int dimension, AdamHyperParams hyper,
                             double beta1, double beta2, double epsilon)
    : hyper_(hyper), beta1_(beta1), beta2_(beta2), epsilon_(epsilon),
      m_(dimension, 0.0), v_(dimension, 0.0)
{
    fatalIf(dimension <= 0, "AdamOptimizer needs a positive dimension");
    fatalIf(hyper.learningRate <= 0.0, "learning rate must be positive");
    fatalIf(hyper.decay <= 0.0 || hyper.decay > 1.0,
            "decay must be in (0, 1]");
}

void
AdamOptimizer::step(std::vector<double>& params,
                    const std::vector<double>& gradient)
{
    panicIf(params.size() != m_.size() || gradient.size() != m_.size(),
            "AdamOptimizer dimension mismatch");

    const double rate = hyper_.rateAt(steps_);
    ++steps_;
    const double bias1 = 1.0 - std::pow(beta1_, steps_);
    const double bias2 = 1.0 - std::pow(beta2_, steps_);

    for (size_t i = 0; i < params.size(); ++i) {
        m_[i] = beta1_ * m_[i] + (1.0 - beta1_) * gradient[i];
        v_[i] = beta2_ * v_[i] + (1.0 - beta2_) * gradient[i] *
                                     gradient[i];
        const double m_hat = m_[i] / bias1;
        const double v_hat = v_[i] / bias2;
        params[i] -= rate * m_hat / (std::sqrt(v_hat) + epsilon_);
    }
}

} // namespace qpc
