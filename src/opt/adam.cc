#include "opt/adam.h"

#include <cmath>

#include "common/logging.h"
#include "opt/batcheval.h"

namespace qpc {

double
AdamHyperParams::rateAt(int step) const
{
    return learningRate * std::pow(decay, step);
}

AdamOptimizer::AdamOptimizer(int dimension, AdamHyperParams hyper,
                             double beta1, double beta2, double epsilon)
    : hyper_(hyper), beta1_(beta1), beta2_(beta2), epsilon_(epsilon),
      m_(dimension, 0.0), v_(dimension, 0.0)
{
    fatalIf(dimension <= 0, "AdamOptimizer needs a positive dimension");
    fatalIf(hyper.learningRate <= 0.0, "learning rate must be positive");
    fatalIf(hyper.decay <= 0.0 || hyper.decay > 1.0,
            "decay must be in (0, 1]");
}

void
AdamOptimizer::step(std::vector<double>& params,
                    const std::vector<double>& gradient)
{
    panicIf(params.size() != m_.size() || gradient.size() != m_.size(),
            "AdamOptimizer dimension mismatch");

    const double rate = hyper_.rateAt(steps_);
    ++steps_;
    const double bias1 = 1.0 - std::pow(beta1_, steps_);
    const double bias2 = 1.0 - std::pow(beta2_, steps_);

    for (size_t i = 0; i < params.size(); ++i) {
        m_[i] = beta1_ * m_[i] + (1.0 - beta1_) * gradient[i];
        v_[i] = beta2_ * v_[i] + (1.0 - beta2_) * gradient[i] *
                                     gradient[i];
        const double m_hat = m_[i] / bias1;
        const double v_hat = v_[i] / bias2;
        params[i] -= rate * m_hat / (std::sqrt(v_hat) + epsilon_);
    }
}

AdamFdResult
adamMinimizeFd(const std::function<double(const std::vector<double>&)>&
                   objective,
               const std::vector<double>& start,
               const AdamFdOptions& options)
{
    const int n = static_cast<int>(start.size());
    fatalIf(n == 0, "adamMinimizeFd needs at least one dimension");
    fatalIf(options.fdEpsilon <= 0.0,
            "adamMinimizeFd needs a positive probe offset");

    AdamFdResult result;
    std::vector<double> x = start;
    AdamOptimizer adam(n, options.hyper);

    // Probe points x +/- eps * e_i, laid out plus-then-minus per
    // coordinate so slot 2i / 2i+1 always holds the same probe.
    std::vector<std::vector<double>> probes(2 * n);
    std::vector<const std::vector<double>*> points(2 * n);
    std::vector<double> probe_values(2 * n);
    std::vector<double> grad(n);

    for (int iter = 0; iter < options.maxIterations; ++iter) {
        for (int i = 0; i < n; ++i) {
            probes[2 * i] = x;
            probes[2 * i][i] += options.fdEpsilon;
            probes[2 * i + 1] = x;
            probes[2 * i + 1][i] -= options.fdEpsilon;
        }
        for (int s = 0; s < 2 * n; ++s)
            points[s] = &probes[s];
        evaluateBatch(objective, points, probe_values.data(),
                      options.evalPool);
        result.evaluations += 2 * n;

        // Gradient assembled in coordinate order: the reduction is
        // deterministic no matter how the probes were scheduled.
        double grad_inf = 0.0;
        for (int i = 0; i < n; ++i) {
            grad[i] = (probe_values[2 * i] - probe_values[2 * i + 1]) /
                      (2.0 * options.fdEpsilon);
            grad_inf = std::max(grad_inf, std::abs(grad[i]));
        }
        if (options.gradTolerance > 0.0 &&
            grad_inf < options.gradTolerance) {
            result.converged = true;
            break;
        }
        adam.step(x, grad);
        ++result.iterations;
    }

    result.bestValue = objective(x);
    ++result.evaluations;
    result.best = std::move(x);
    return result;
}

} // namespace qpc
