/**
 * @file
 * Optimizer-movement trigger for adaptive grid refinement.
 *
 * The VQE and QAOA drivers share one policy for when a hybrid loop
 * should refine its quantized serving plan: once the optimizer's
 * per-iteration step norm falls to ParamQuantization::refineStepNorm
 * (it has stopped leaping and started homing in), run
 * CompileService::refineQuantizedGrid at most every refineCooldown
 * iterations. This header is that policy in one place, so the two
 * drivers cannot drift apart.
 */

#ifndef QPC_RUNTIME_REFINETRIGGER_H
#define QPC_RUNTIME_REFINETRIGGER_H

#include <cstdint>

#include "opt/neldermead.h"
#include "runtime/service.h"

namespace qpc {

/** What a run's driver-triggered refinement rounds did in total
 * (driver results copy these fields out verbatim). */
struct RefinementTriggerStats
{
    int rounds = 0;              ///< Rounds that split at least one leaf.
    std::uint64_t splits = 0;    ///< Leaves split across the run.
    std::uint64_t prewarmSynths = 0; ///< Child pulses synthesized.
    std::uint64_t bytesReleased = 0; ///< Stale parent bytes released.
};

/**
 * Wrap `optimizer` with the convergence-gated refinement trigger for
 * `plan`, chaining any callback already installed. Rounds accumulate
 * into `stats`, which must outlive the returned options' use (the
 * drivers keep it on the stack next to the optimizer run). The plan's
 * quantization must be adaptive; service and plan must outlive the
 * optimizer run as well.
 */
NelderMeadOptions
withRefinementTrigger(NelderMeadOptions optimizer,
                      CompileService& service, const ServingPlan& plan,
                      RefinementTriggerStats& stats);

} // namespace qpc

#endif // QPC_RUNTIME_REFINETRIGGER_H
