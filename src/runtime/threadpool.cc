#include "runtime/threadpool.h"

#include <algorithm>

#include "common/logging.h"
#include "telemetry/trace.h"

namespace qpc {

ThreadPool::ThreadPool(int num_workers, std::size_t max_queued_jobs)
    : maxQueued_(max_queued_jobs)
{
    if (num_workers <= 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        num_workers = hw ? static_cast<int>(hw) : 1;
    }
    workers_.reserve(num_workers);
    for (int i = 0; i < num_workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
    }
    cv_.notify_all();
    spaceCv_.notify_all();
    for (std::thread& worker : workers_)
        worker.join();
}

void
ThreadPool::enqueueLocked(std::function<void()>&& job)
{
    QueuedJob qj;
    qj.fn = std::move(job);
    qj.enqueueNs = traceNowNs();
    qj.traceParent = currentTraceParent();
    queue_.push_back(std::move(qj));
    peakDepth_ = std::max(peakDepth_, queue_.size());
}

bool
ThreadPool::submit(std::function<void()> job)
{
    panicIf(!job, "cannot submit an empty job");
    {
        std::unique_lock<std::mutex> lock(mu_);
        if (maxQueued_ > 0)
            spaceCv_.wait(lock, [this] {
                return stopping_ || queue_.size() < maxQueued_;
            });
        // Stopped — either before the call or while this producer was
        // blocked on a full queue. Refuse the job instead of
        // deadlocking (the destructor's workers only drain, they never
        // free submit()'s wait) or aborting: the caller surfaces the
        // refusal as a rejected admission.
        if (stopping_)
            return false;
        enqueueLocked(std::move(job));
    }
    cv_.notify_one();
    return true;
}

bool
ThreadPool::trySubmit(std::function<void()> job)
{
    panicIf(!job, "cannot submit an empty job");
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (stopping_)
            return false;
        if (maxQueued_ > 0 && queue_.size() >= maxQueued_)
            return false;
        enqueueLocked(std::move(job));
    }
    cv_.notify_one();
    return true;
}

std::size_t
ThreadPool::queueDepth() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
}

std::size_t
ThreadPool::peakQueueDepth() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return peakDepth_;
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        QueuedJob job;
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_.wait(lock,
                     [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping_ and drained.
            job = std::move(queue_.front());
            queue_.pop_front();
        }
        if (maxQueued_ > 0)
            spaceCv_.notify_one();
        const std::uint64_t dequeueNs = traceNowNs();
        queueWaitNs_.record(dequeueNs > job.enqueueNs
                                ? dequeueNs - job.enqueueNs
                                : 0);
        // The wait happened between two threads; record it as a
        // retroactive span chained to the submitter, then run the
        // job under the same parent so its own spans nest there too.
        recordSpanEvent("queue-wait", job.enqueueNs, dequeueNs,
                        job.traceParent);
        {
            ScopedTraceParent parent(job.traceParent);
            job.fn();
        }
        const std::uint64_t doneNs = traceNowNs();
        jobRunNs_.record(doneNs > dequeueNs ? doneNs - dequeueNs
                                            : 0);
    }
}

} // namespace qpc
