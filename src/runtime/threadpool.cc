#include "runtime/threadpool.h"

#include "common/logging.h"

namespace qpc {

ThreadPool::ThreadPool(int num_workers)
{
    if (num_workers <= 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        num_workers = hw ? static_cast<int>(hw) : 1;
    }
    workers_.reserve(num_workers);
    for (int i = 0; i < num_workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (std::thread& worker : workers_)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    panicIf(!job, "cannot submit an empty job");
    {
        std::lock_guard<std::mutex> lock(mu_);
        panicIf(stopping_, "submit() on a stopping ThreadPool");
        queue_.push_back(std::move(job));
    }
    cv_.notify_one();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_.wait(lock,
                     [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping_ and drained.
            job = std::move(queue_.front());
            queue_.pop_front();
        }
        job();
    }
}

} // namespace qpc
