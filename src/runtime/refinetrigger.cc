#include "runtime/refinetrigger.h"

namespace qpc {

NelderMeadOptions
withRefinementTrigger(NelderMeadOptions optimizer,
                      CompileService& service, const ServingPlan& plan,
                      RefinementTriggerStats& stats)
{
    const ParamQuantization quant = plan.quantization();
    auto chained = optimizer.onIteration;
    int last_round = -quant.refineCooldown;
    optimizer.onIteration =
        [&service, &plan, &stats, quant, chained,
         last_round](const NelderMeadIterationInfo& info) mutable {
            if (chained)
                chained(info);
            // Gate on convergence-in-progress: big steps mean the
            // optimizer is still leaping across the landscape, where
            // finer bins would be wasted on regions it never
            // revisits.
            if (quant.refineStepNorm > 0.0 &&
                info.stepNorm > quant.refineStepNorm)
                return;
            if (info.iteration - last_round < quant.refineCooldown)
                return;
            last_round = info.iteration;
            const RefinementReport round =
                service.refineQuantizedGrid(plan);
            if (round.leavesSplit == 0)
                return;
            ++stats.rounds;
            stats.splits +=
                static_cast<std::uint64_t>(round.leavesSplit);
            stats.prewarmSynths += round.synthRuns;
            stats.bytesReleased += round.bytesReleased;
        };
    return optimizer;
}

} // namespace qpc
