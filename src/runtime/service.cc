#include "runtime/service.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <thread>

#include "common/logging.h"
#include "model/timemodel.h"
#include "pulse/device.h"
#include "pulse/library.h"
#include "sim/statevector.h"
#include "telemetry/trace.h"
#include "transpile/blocking.h"

namespace qpc {

namespace {

/** One strict segment's rotation, rebuilt at a representative angle. */
Circuit
rotationAt(const Circuit& gate, double angle)
{
    Circuit snapped(gate.numQubits());
    GateOp op = gate.ops().front();
    op.angle = ParamExpr::constant(angle);
    snapped.add(op);
    return snapped;
}

/** One strict segment's rotation, rebuilt at a grid bin's angle. */
Circuit
snappedRotation(const Circuit& gate, std::int64_t bin, int bins)
{
    return rotationAt(gate, binAngle(bin, bins));
}

/** Analytic library pulse for one local block on a clique device. */
PulseSchedule
analyticPulse(const Circuit& block, double dt)
{
    const DeviceModel device =
        DeviceModel::gmonClique(std::max(1, block.numQubits()));
    const GatePulseLibrary library(device, dt);
    return library.compileCircuit(block);
}

/** One validation for every quantization config entry point: the
 * service-wide default (constructor) and per-plan overrides
 * (prepareServing) must accept exactly the same configs. */
void
validateQuantization(const ParamQuantization& quantization)
{
    fatalIf(quantization.enabled &&
                (quantization.bins <= 0 ||
                 quantization.fidelityBudget < 0.0),
            "quantization needs a positive bin count and a "
            "non-negative fidelity budget");
    fatalIf(quantization.enabled && quantization.adaptive &&
                (quantization.maxRefineDepth <= 0 ||
                 quantization.maxRefineDepth >
                     AdaptiveAngleGrid::kMaxDepth ||
                 quantization.splitVisitThreshold == 0),
            "adaptive quantization needs a refine depth in [1, 32] "
            "and a positive split-visit threshold");
    fatalIf(quantization.enabled && quantization.adaptive &&
                (quantization.visitDecay < 0.0 ||
                 quantization.visitDecay > 1.0),
            "adaptive visit decay must lie in [0, 1]");
}

/** Cache options with the service's starting epoch folded in, so the
 * disk tier adopts (and serves) only records of that calibration. */
PulseCacheOptions
cacheOptionsWithEpoch(PulseCacheOptions cache,
                      const CalibrationEpoch& epoch)
{
    cache.epoch = epoch;
    return cache;
}

} // namespace

BlockSynthesizer
analyticBlockSynthesizer(double dt)
{
    fatalIf(dt <= 0.0, "sample period must be positive");
    return [dt](const Circuit& block) {
        return analyticPulse(block, dt);
    };
}

BlockSynthesizer
grapeBlockSynthesizer(GrapeOptions options)
{
    return [options](const Circuit& block) {
        const DeviceModel device =
            DeviceModel::gmonClique(std::max(1, block.numQubits()));
        const CMatrix target = circuitUnitary(block);
        const double time_ns = PulseTimeModel().blockTimeNs(block);
        const GrapeResult result =
            runGrapeFixedTime(device, target, time_ns, options);
        return result.pulse;
    };
}

BlockSynthesizer
modeledLatencySynthesizer(double time_scale, double dt,
                          LatencyModelParams params)
{
    fatalIf(time_scale < 0.0, "time scale must be non-negative");
    auto latency = std::make_shared<GrapeLatencyModel>(params);
    auto time_model = std::make_shared<PulseTimeModel>();
    return [time_scale, dt, latency, time_model](const Circuit& block) {
        const double pulse_ns = time_model->blockTimeNs(block);
        const double seconds =
            time_scale *
            latency->fullGrapeSeconds(block.numQubits(), pulse_ns);
        if (seconds > 0.0)
            std::this_thread::sleep_for(
                std::chrono::duration<double>(seconds));
        return analyticPulse(block, dt);
    };
}

CompileService::CompileService(CompileServiceOptions options)
    : options_(std::move(options)),
      cache_(cacheOptionsWithEpoch(options_.cache, options_.epoch)),
      epoch_(options_.epoch),
      pool_(options_.numWorkers, options_.maxQueuedJobs)
{
    fatalIf(options_.maxBlockWidth <= 0,
            "block width cap must be positive");
    validateQuantization(options_.quantization);
    if (!options_.synthesizer)
        options_.synthesizer = analyticBlockSynthesizer(options_.lookupDt);
}

CompileService::~CompileService() = default;

CalibrationEpoch
CompileService::epoch() const
{
    std::lock_guard<std::mutex> lock(epochMu_);
    return epoch_;
}

CalibrationEpoch
CompileService::bumpEpoch(std::uint64_t model_hash)
{
    std::lock_guard<std::mutex> lock(epochMu_);
    epoch_.counter += 1;
    if (model_hash != 0)
        epoch_.modelHash = model_hash;
    return epoch_;
}

void
CompileService::setEpoch(const CalibrationEpoch& epoch)
{
    std::lock_guard<std::mutex> lock(epochMu_);
    epoch_ = epoch;
}

BlockFingerprint
CompileService::fingerprintStamped(const Circuit& block) const
{
    BlockFingerprint fp = fingerprintBlock(block);
    fp.epoch = epoch();
    return fp;
}

CompileService::PulseFuture
CompileService::requestBlock(const Circuit& block, AdmitOutcome* outcome)
{
    return admit(fingerprintStamped(block), block, outcome,
                 /*force_block=*/false);
}

namespace {

CompileService::PulseFuture
readyFuture(PulsePtr pulse)
{
    std::promise<PulsePtr> ready;
    ready.set_value(std::move(pulse));
    return ready.get_future().share();
}

} // namespace

CompileService::PulseFuture
CompileService::admit(const BlockFingerprint& fp, const Circuit& block,
                      AdmitOutcome* outcome, bool force_block)
{
    requests_.fetch_add(1, std::memory_order_relaxed);

    // Optimistic full lookup (memory, then disk) outside the
    // admission lock: disk I/O must never serialize every requester
    // behind inflightMu_.
    if (PulsePtr cached = cache_.get(fp)) {
        cacheHits_.fetch_add(1, std::memory_order_relaxed);
        if (outcome)
            *outcome = AdmitOutcome::CacheHit;
        return readyFuture(std::move(cached));
    }
    return admitAfterMiss(fp, block, outcome, force_block);
}

CompileService::PulseFuture
CompileService::admitAfterMiss(const BlockFingerprint& fp,
                               const Circuit& block,
                               AdmitOutcome* outcome, bool force_block)
{
    // Admission under one lock: join an in-flight synthesis, or
    // re-check the memory tier (the worker inserts there *before*
    // erasing its in-flight entry, so a requester that misses the
    // in-flight map finds the pulse), or start a flight. Together
    // these guarantee at most one synthesis per fingerprint while it
    // stays cached.
    std::unique_lock<std::mutex> lock(inflightMu_);
    auto it = inflight_.find(fp);
    if (it != inflight_.end()) {
        coalesced_.fetch_add(1, std::memory_order_relaxed);
        if (outcome)
            *outcome = AdmitOutcome::Coalesced;
        return it->second;
    }
    if (PulsePtr cached = cache_.peekMemory(fp)) {
        cacheHits_.fetch_add(1, std::memory_order_relaxed);
        if (outcome)
            *outcome = AdmitOutcome::CacheHit;
        return readyFuture(std::move(cached));
    }
    auto completion = std::make_shared<std::promise<PulsePtr>>();
    PulseFuture future = completion->get_future().share();

    // Worker-side ordering: cache.put, then in-flight erase, then
    // promise resolution. Pairs with the admission order above for the
    // at-most-once guarantee, and means a requester arriving after a
    // waiter's get() returns deterministically finds the cache entry
    // rather than a stale in-flight record.
    auto job = [this, fp, block, completion] {
        std::exception_ptr failure;
        PulsePtr pulse;
        try {
            {
                TraceSpan span("synthesis");
                const std::uint64_t t0 = traceNowNs();
                pulse = std::make_shared<const PulseSchedule>(
                    options_.synthesizer(block));
                const std::uint64_t t1 = traceNowNs();
                synthNs_.record(t1 > t0 ? t1 - t0 : 0);
            }
            synthRuns_.fetch_add(1, std::memory_order_relaxed);
            cache_.put(fp, pulse);
        } catch (...) {
            failure = std::current_exception();
        }
        {
            std::lock_guard<std::mutex> guard(inflightMu_);
            inflight_.erase(fp);
        }
        if (failure)
            completion->set_exception(failure);
        else
            completion->set_value(std::move(pulse));
    };

    if (!force_block &&
        options_.queueFullPolicy == QueueFullPolicy::Reject &&
        options_.maxQueuedJobs > 0) {
        // Reserve-or-refuse while still holding inflightMu_: nobody
        // can have coalesced onto this flight yet, so refusing leaves
        // no dangling future behind, and the in-flight entry is
        // published before the job can possibly run and erase it.
        inflight_.emplace(fp, future);
        if (!pool_.trySubmit(std::move(job))) {
            inflight_.erase(fp);
            lock.unlock();
            rejected_.fetch_add(1, std::memory_order_relaxed);
            if (outcome)
                *outcome = AdmitOutcome::Rejected;
            return PulseFuture{};
        }
        lock.unlock();
    } else {
        // Publish the flight, release the lock, then submit: if the
        // bounded queue makes submit() block, concurrent requesters of
        // this fingerprint still coalesce instead of piling onto
        // inflightMu_.
        inflight_.emplace(fp, future);
        lock.unlock();
        if (!pool_.submit(std::move(job))) {
            // The pool stopped (service teardown under load) while
            // this producer awaited queue space. Withdraw the flight
            // and poison the future so callers that already coalesced
            // onto it unblock with an error instead of hanging on a
            // promise nobody will fulfill.
            {
                std::lock_guard<std::mutex> guard(inflightMu_);
                inflight_.erase(fp);
            }
            completion->set_exception(std::make_exception_ptr(
                std::runtime_error("CompileService stopped before the "
                                   "synthesis could be queued")));
            rejected_.fetch_add(1, std::memory_order_relaxed);
            if (outcome)
                *outcome = AdmitOutcome::Rejected;
            // Callers that must deliver get the poisoned-but-valid
            // future (their .get() surfaces the shutdown); shedding
            // callers get the same invalid future as a queue-full
            // rejection.
            return force_block ? future : PulseFuture{};
        }
    }
    if (outcome)
        *outcome = AdmitOutcome::Started;
    return future;
}

PulseSchedule
CompileService::compileBlock(const Circuit& block)
{
    return *admit(fingerprintStamped(block), block, nullptr,
                  /*force_block=*/true)
                .get();
}

void
CompileService::appendFixedEntries(
    const Circuit& segment_circuit,
    std::vector<ServingPlan::FixedEntry>& out) const
{
    const Blocking blocking =
        aggregateBlocks(segment_circuit, options_.maxBlockWidth);
    for (const CircuitBlock& block : blocking.blocks) {
        ServingPlan::FixedEntry entry;
        entry.local = block.asCircuit(segment_circuit);
        entry.fingerprint = fingerprintStamped(entry.local);
        out.push_back(std::move(entry));
    }
}

std::vector<ServingPlan::FixedEntry>
CompileService::collectFixedEntries(const Circuit& template_circuit) const
{
    std::vector<ServingPlan::FixedEntry> entries;
    const StrictPartition partition = strictPartition(template_circuit);
    for (const StrictSegment& segment : partition.segments)
        if (segment.fixed && !segment.circuit.empty())
            appendFixedEntries(segment.circuit, entries);
    return entries;
}

std::vector<Circuit>
CompileService::fixedBlocksOf(const Circuit& template_circuit) const
{
    std::vector<Circuit> blocks;
    for (ServingPlan::FixedEntry& entry :
         collectFixedEntries(template_circuit))
        blocks.push_back(std::move(entry.local));
    return blocks;
}

BatchCompileReport
CompileService::compileEntries(
    const std::vector<ServingPlan::FixedEntry>& entries, int circuits,
    std::chrono::steady_clock::time_point start)
{
    BatchCompileReport report;
    report.circuits = circuits;
    report.totalBlocks = static_cast<int>(entries.size());

    // Dedupe before a single job is enqueued: shared structure (QAOA
    // sweeps over one graph, repeated UCCSD entanglers) collapses
    // here.
    std::unordered_map<BlockFingerprint, const Circuit*,
                       BlockFingerprintHash>
        unique;
    for (const ServingPlan::FixedEntry& entry : entries)
        unique.emplace(entry.fingerprint, &entry.local);
    report.uniqueBlocks = static_cast<int>(unique.size());

    // Per-batch accounting comes from admission outcomes, not from
    // deltas of the service-wide counters: a shared service may be
    // compiling other callers' batches concurrently.
    std::vector<PulseFuture> pending;
    pending.reserve(unique.size());
    for (const auto& [fp, block] : unique) {
        AdmitOutcome outcome = AdmitOutcome::CacheHit;
        // Batch admissions always block for queue space: the report
        // promises every unique block resolves, so backpressure slows
        // the batch down rather than thinning it out.
        pending.push_back(
            admit(fp, *block, &outcome, /*force_block=*/true));
        switch (outcome) {
        case AdmitOutcome::CacheHit:
            ++report.cacheHits;
            break;
        case AdmitOutcome::Started:
            ++report.synthRuns;
            break;
        case AdmitOutcome::Coalesced:
            ++report.coalesced;
            break;
        case AdmitOutcome::Rejected:
            // Only possible when the pool stopped mid-batch (service
            // teardown racing a batch): the admission handed back a
            // poisoned future, so the wait below surfaces the
            // shutdown as an exception rather than a silent undercount.
            break;
        }
    }
    for (PulseFuture& future : pending)
        future.get();

    report.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    return report;
}

BatchCompileReport
CompileService::compileBatch(const std::vector<Circuit>& templates)
{
    const auto start = std::chrono::steady_clock::now();
    std::vector<ServingPlan::FixedEntry> entries;
    for (const Circuit& template_circuit : templates)
        for (ServingPlan::FixedEntry& entry :
             collectFixedEntries(template_circuit))
            entries.push_back(std::move(entry));
    return compileEntries(entries, static_cast<int>(templates.size()),
                          start);
}

BatchCompileReport
CompileService::precompileCircuit(const Circuit& template_circuit)
{
    return compileBatch({template_circuit});
}

BatchCompileReport
CompileService::precompilePlan(const ServingPlan& plan)
{
    const auto start = std::chrono::steady_clock::now();
    std::vector<ServingPlan::FixedEntry> entries;
    for (const ServingPlan::PlanSegment& segment : plan.segments_)
        for (const ServingPlan::FixedEntry& entry : segment.blocks)
            entries.push_back(entry);
    return compileEntries(entries, 1, start);
}

BatchCompileReport
CompileService::prewarmQuantizedBins(const ServingPlan& plan)
{
    const auto start = std::chrono::steady_clock::now();
    const ParamQuantization& quantization = plan.quant_;
    if (!quantization.enabled) {
        BatchCompileReport report;
        report.wallSeconds = 0.0;
        return report;
    }

    // Enumerate the grid once per distinct snapped circuit: segments
    // sharing a rotation axis (every QAOA mixer Rx, say) collapse in
    // compileEntries' fingerprint dedupe, so the worker pool sees each
    // (axis, bin) exactly once.
    std::vector<ServingPlan::FixedEntry> entries;
    for (const ServingPlan::PlanSegment& segment : plan.segments_) {
        if (segment.fixed)
            continue;
        const auto table =
            plan.binTables_.find(segment.gate.ops().front().kind);
        panicIf(table == plan.binTables_.end(),
                "serving plan is missing a quantized bin table");
        for (int bin = 0; bin < quantization.bins; ++bin) {
            ServingPlan::FixedEntry entry;
            entry.fingerprint =
                table->second[static_cast<std::size_t>(bin)];
            entry.local =
                snappedRotation(segment.gate, bin, quantization.bins);
            entries.push_back(std::move(entry));
        }
    }
    return compileEntries(entries, 1, start);
}

int
ServingPlan::numFixedBlocks() const
{
    int count = 0;
    for (const PlanSegment& segment : segments_)
        if (segment.fixed)
            count += static_cast<int>(segment.blocks.size());
    return count;
}

int
ServingPlan::numParamGates() const
{
    int count = 0;
    for (const PlanSegment& segment : segments_)
        if (!segment.fixed)
            ++count;
    return count;
}

ServingPlan
CompileService::prepareServing(const StrictPartition& partition) const
{
    return prepareServing(partition, options_.quantization);
}

ServingPlan
CompileService::prepareServing(const StrictPartition& partition,
                               const ParamQuantization& quantization)
    const
{
    TraceSpan span("prepare-serving");
    const std::uint64_t t0 = traceNowNs();
    struct RecordOnExit
    {
        LatencyHistogram& hist;
        std::uint64_t start;
        ~RecordOnExit()
        {
            const std::uint64_t end = traceNowNs();
            hist.record(end > start ? end - start : 0);
        }
    } timer{prepareNs_, t0};

    // Per-plan overrides (driver knobs) get the same validation the
    // constructor applies to the service-wide default, so an invalid
    // config fails here rather than deep inside the first serve().
    validateQuantization(quantization);
    ServingPlan plan;
    plan.quant_ = quantization;
    // One epoch snapshot for the whole plan: every fingerprint minted
    // below carries it (fingerprintStamped re-reads the live epoch,
    // but a bump mid-prepare only ever advances it, and the plan is
    // keyed by the epoch it records here for drift detection).
    plan.epoch_ = epoch();
    for (const StrictSegment& segment : partition.segments) {
        if (segment.fixed) {
            if (segment.circuit.empty())
                continue;
            ServingPlan::PlanSegment out;
            out.fixed = true;
            appendFixedEntries(segment.circuit, out.blocks);
            plan.segments_.push_back(std::move(out));
        } else {
            // Relabel the lone symbolic rotation to local qubits; its
            // blocking never depends on the binding, so none of this
            // repeats per iteration.
            panicIf(segment.circuit.size() != 1,
                    "non-fixed segment must hold exactly one gate");
            const GateOp& op = segment.circuit.ops().front();
            ServingPlan::PlanSegment out;
            out.fixed = false;
            const int width = op.arity();
            Circuit local(width);
            GateOp relabeled = op;
            relabeled.q0 = 0;
            if (width == 2)
                relabeled.q1 = 1;
            local.add(relabeled);
            out.gate = std::move(local);
            if (!plan.kits_.count(width))
                plan.kits_.emplace(
                    width, std::make_unique<ServingPlan::LookupKit>(
                               width, options_.lookupDt));
            // Fingerprint the whole grid for this axis once: serve()
            // then maps binding -> bin -> address by array index.
            if (quantization.enabled &&
                !plan.binTables_.count(relabeled.kind)) {
                std::vector<BlockFingerprint> table;
                table.reserve(quantization.bins);
                for (int bin = 0; bin < quantization.bins; ++bin)
                    table.push_back(fingerprintStamped(snappedRotation(
                        out.gate, bin, quantization.bins)));
                // Adaptive refinement state: every coarse bin starts
                // as one leaf carrying the fixed grid's fingerprint
                // (representatives coincide bit-for-bit), so an
                // unsplit leaf serves — and a prewarmed grid warms —
                // the very same cache entries.
                if (quantization.adaptive) {
                    auto axis =
                        std::make_shared<ServingPlan::AdaptiveAxis>();
                    axis->grid = AdaptiveAngleGrid(quantization.bins);
                    axis->gate = out.gate;
                    axis->leaves.reserve(
                        static_cast<std::size_t>(quantization.bins));
                    for (int bin = 0; bin < quantization.bins; ++bin) {
                        ServingPlan::AdaptiveAxis::LeafState state;
                        state.leaf = axis->grid.locate(
                            binAngle(bin, quantization.bins));
                        state.fingerprint =
                            table[static_cast<std::size_t>(bin)];
                        axis->leaves.emplace(
                            AdaptiveAngleGrid::leafKey(state.leaf),
                            std::move(state));
                    }
                    plan.adaptiveAxes_.emplace(relabeled.kind,
                                               std::move(axis));
                }
                plan.binTables_.emplace(relabeled.kind,
                                        std::move(table));
            }
            plan.segments_.push_back(std::move(out));
        }
    }
    return plan;
}

ServedPulse
CompileService::serve(const ServingPlan& plan,
                      const std::vector<double>& theta)
{
    const std::uint64_t serveT0 = traceNowNs();
    struct RecordOnExit
    {
        LatencyHistogram& hist;
        std::uint64_t start;
        ~RecordOnExit()
        {
            const std::uint64_t end = traceNowNs();
            hist.record(end > start ? end - start : 0);
        }
    } timer{serveNs_, serveT0};

    ServedPulse served;
    for (const ServingPlan::PlanSegment& segment : plan.segments_) {
        if (segment.fixed) {
            for (const ServingPlan::FixedEntry& entry : segment.blocks) {
                // Warm path: probe the cache directly — no promise /
                // future machinery for a value that is already there.
                // One logical lookup, counted once: the probe is the
                // only CacheStats lookup (a miss hands the result to
                // admitAfterMiss rather than re-probing), and the
                // service-wide request/hit counters see every serve.
                requests_.fetch_add(1, std::memory_order_relaxed);
                PulsePtr pulse;
                {
                    TraceSpan probe("cache-probe");
                    pulse = cache_.get(entry.fingerprint);
                }
                if (pulse) {
                    cacheHits_.fetch_add(1, std::memory_order_relaxed);
                    ++served.cacheHits;
                } else {
                    ++served.cacheMisses;
                    TraceSpan wait("synthesis-wait");
                    pulse = admitAfterMiss(entry.fingerprint,
                                           entry.local, nullptr,
                                           /*force_block=*/true)
                                .get();
                }
                served.pulseNs += pulse->durationNs();
                served.segments.push_back(std::move(pulse));
            }
        } else {
            // A parametrized rotation. Quantized serving snaps the
            // binding onto the angle grid — the current adaptive leaf
            // when the plan refines, the fixed bin otherwise — and
            // resolves the representative through the
            // content-addressed cache: one synthesis per bin, ever.
            // It falls back to the exact path when the snap would
            // overdraw the per-gate fidelity budget (or quantization
            // is off): an analytic lookup synthesized per binding,
            // never cached.
            if (plan.quant_.enabled) {
                const GateOp& op = segment.gate.ops().front();
                const double angle = op.angle.bind(theta);
                double representative = 0.0;
                BlockFingerprint fp;
                if (plan.quant_.adaptive) {
                    const auto axis_it =
                        plan.adaptiveAxes_.find(op.kind);
                    panicIf(axis_it == plan.adaptiveAxes_.end(),
                            "serving plan is missing an adaptive axis");
                    ServingPlan::AdaptiveAxis& axis = *axis_it->second;
                    // Short critical section: locate the leaf, read
                    // its fingerprint, feed the visit counter that
                    // drives refinement. Synthesis and cache traffic
                    // stay outside the lock.
                    std::lock_guard<std::mutex> lock(axis.mu);
                    const AdaptiveAngleGrid::Leaf leaf =
                        axis.grid.locate(angle);
                    const auto leaf_it = axis.leaves.find(
                        AdaptiveAngleGrid::leafKey(leaf));
                    panicIf(leaf_it == axis.leaves.end(),
                            "adaptive axis lost a grid leaf");
                    ++leaf_it->second.visits;
                    representative = leaf.representative;
                    fp = leaf_it->second.fingerprint;
                } else {
                    const std::int64_t bin =
                        angleBin(angle, plan.quant_.bins);
                    const auto table = plan.binTables_.find(op.kind);
                    panicIf(table == plan.binTables_.end(),
                            "serving plan is missing a quantized bin "
                            "table");
                    // Fail loudly on a plan whose bin table disagrees
                    // with its ParamQuantization::bins (a corrupted or
                    // hand-assembled plan): indexing by a bin computed
                    // from the wrong grid would read out of bounds.
                    panicIf(table->second.size() !=
                                static_cast<std::size_t>(
                                    plan.quant_.bins),
                            "quantized bin table size disagrees with "
                            "ParamQuantization::bins");
                    representative = binAngle(bin, plan.quant_.bins);
                    fp = table->second[static_cast<std::size_t>(bin)];
                }
                const double bound =
                    quantizationErrorBound(wrappedAngleDelta(
                        angle, representative));
                if (bound <= plan.quant_.fidelityBudget) {
                    served.quantErrorBound += bound;
                    // Same single-probe discipline as the Fixed path:
                    // the bin lookup is one logical request, counted
                    // once in CacheStats and in the service counters.
                    requests_.fetch_add(1, std::memory_order_relaxed);
                    PulsePtr pulse;
                    {
                        TraceSpan probe("cache-probe");
                        pulse = cache_.get(fp);
                    }
                    if (pulse) {
                        cacheHits_.fetch_add(1,
                                             std::memory_order_relaxed);
                        ++served.quantHits;
                        quantHits_.fetch_add(1,
                                             std::memory_order_relaxed);
                    } else {
                        ++served.quantMisses;
                        quantMisses_.fetch_add(
                            1, std::memory_order_relaxed);
                        TraceSpan wait("synthesis-wait");
                        pulse = admitAfterMiss(
                                    fp,
                                    rotationAt(segment.gate,
                                               representative),
                                    nullptr, /*force_block=*/true)
                                    .get();
                    }
                    served.pulseNs += pulse->durationNs();
                    served.segments.push_back(std::move(pulse));
                    continue;
                }
                ++served.quantFallbacks;
                quantFallbacks_.fetch_add(1, std::memory_order_relaxed);
            }
            const auto kit =
                plan.kits_.find(segment.gate.numQubits());
            panicIf(kit == plan.kits_.end(),
                    "serving plan is missing a lookup kit");
            // Per-binding exact synthesis is still one logical "give
            // me this block": count it, so hit rates keep an honest
            // denominator under fallback-heavy workloads (it used to
            // bypass ServiceStats entirely).
            requests_.fetch_add(1, std::memory_order_relaxed);
            exactServes_.fetch_add(1, std::memory_order_relaxed);
            ++served.exactServes;
            TraceSpan exact("exact-synth");
            PulsePtr pulse = std::make_shared<const PulseSchedule>(
                kit->second->library.compileCircuit(
                    segment.gate.bind(theta)));
            served.pulseNs += pulse->durationNs();
            served.segments.push_back(std::move(pulse));
        }
    }
    return served;
}

ServedPulse
CompileService::serveStrict(const StrictPartition& partition,
                            const std::vector<double>& theta)
{
    const ServingPlan plan = prepareServing(partition);
    return serve(plan, theta);
}

RefinementReport
CompileService::refineQuantizedGrid(const ServingPlan& plan)
{
    const auto start = std::chrono::steady_clock::now();
    RefinementReport report;
    if (!plan.quant_.enabled || !plan.quant_.adaptive)
        return report;
    const ParamQuantization& q = plan.quant_;
    const std::size_t max_leaves =
        q.maxLeavesPerAxis
            ? q.maxLeavesPerAxis
            : static_cast<std::size_t>(q.bins) * 4;

    // Phase 1, per axis: snapshot the hot leaves (enough serve
    // visits, below the depth cap) under the axis lock, then build
    // and fingerprint the candidate children *outside* it — circuit
    // construction and unitary hashing are the expensive part, and
    // serve() must never stall behind them — and finally re-lock to
    // commit the splits. A leaf a concurrent round already split is
    // simply skipped at commit; concurrent serves see either the
    // parent or both children, never a gap in the topology.
    std::vector<ServingPlan::FixedEntry> children;
    std::vector<BlockFingerprint> stale;
    for (const auto& [kind, axis_ptr] : plan.adaptiveAxes_) {
        ServingPlan::AdaptiveAxis& axis = *axis_ptr;

        struct Candidate
        {
            AdaptiveAngleGrid::Leaf parent;
            BlockFingerprint parentFingerprint;
            std::uint64_t visits = 0;
            ServingPlan::FixedEntry low, high;
            AdaptiveAngleGrid::Leaf lowLeaf, highLeaf;
        };
        std::vector<Candidate> hot;
        {
            std::lock_guard<std::mutex> lock(axis.mu);
            for (const auto& [key, state] : axis.leaves)
                if (state.visits >= q.splitVisitThreshold &&
                    state.leaf.depth < q.maxRefineDepth) {
                    Candidate candidate;
                    candidate.parent = state.leaf;
                    candidate.parentFingerprint = state.fingerprint;
                    candidate.visits = state.visits;
                    hot.push_back(std::move(candidate));
                }
            // Cool every leaf *after* the hot snapshot: a leaf that
            // just crossed the threshold still splits this round, but
            // heat the optimizer abandoned stops compounding toward a
            // split it no longer deserves. Runs even when nothing is
            // hot — cooling is about rounds elapsing, not splits.
            if (q.visitDecay < 1.0)
                for (auto& [key, state] : axis.leaves)
                    state.visits = static_cast<std::uint64_t>(
                        static_cast<double>(state.visits) *
                        q.visitDecay);
        }
        if (hot.empty())
            continue;
        std::sort(hot.begin(), hot.end(),
                  [](const Candidate& a, const Candidate& b) {
                      if (a.visits != b.visits)
                          return a.visits > b.visits;
                      return AdaptiveAngleGrid::leafKey(a.parent) <
                             AdaptiveAngleGrid::leafKey(b.parent);
                  });
        // Unlocked: childrenOf is pure geometry, and the axis gate
        // circuit is immutable after prepareServing.
        for (Candidate& candidate : hot) {
            const auto [low, high] =
                axis.grid.childrenOf(candidate.parent);
            candidate.lowLeaf = low;
            candidate.highLeaf = high;
            candidate.low.local =
                rotationAt(axis.gate, low.representative);
            candidate.low.fingerprint =
                fingerprintStamped(candidate.low.local);
            candidate.high.local =
                rotationAt(axis.gate, high.representative);
            candidate.high.fingerprint =
                fingerprintStamped(candidate.high.local);
        }
        int split_here = 0;
        {
            std::lock_guard<std::mutex> lock(axis.mu);
            for (Candidate& candidate : hot) {
                if (axis.grid.numLeaves() >= max_leaves)
                    break;
                const std::uint64_t parent_key =
                    AdaptiveAngleGrid::leafKey(candidate.parent);
                // Gone = a concurrent round split it first; its
                // children are already installed.
                if (!axis.leaves.count(parent_key))
                    continue;
                axis.grid.split(candidate.parent);
                axis.leaves.erase(parent_key);
                ServingPlan::AdaptiveAxis::LeafState low_state;
                low_state.leaf = candidate.lowLeaf;
                low_state.fingerprint = candidate.low.fingerprint;
                axis.leaves.emplace(
                    AdaptiveAngleGrid::leafKey(candidate.lowLeaf),
                    std::move(low_state));
                ServingPlan::AdaptiveAxis::LeafState high_state;
                high_state.leaf = candidate.highLeaf;
                high_state.fingerprint = candidate.high.fingerprint;
                axis.leaves.emplace(
                    AdaptiveAngleGrid::leafKey(candidate.highLeaf),
                    std::move(high_state));
                children.push_back(std::move(candidate.low));
                children.push_back(std::move(candidate.high));
                stale.push_back(candidate.parentFingerprint);
                ++split_here;
            }
        }
        if (split_here > 0) {
            ++report.axesRefined;
            report.leavesSplit += split_here;
        }
    }
    if (report.leavesSplit == 0)
        return report;

    // Phase 2: release the stale parents first — their bytes fund the
    // children under the cache's byte budget — then pre-warm the
    // children through the pool so the next serves hit warm. A parent
    // another axis still references (the shared identity bin) just
    // re-promotes from disk or re-synthesizes on its next touch.
    for (const BlockFingerprint& fp : stale) {
        const std::size_t bytes = cache_.erase(fp);
        if (bytes > 0) {
            ++report.staleReleased;
            report.bytesReleased += bytes;
        }
    }
    const BatchCompileReport prewarm =
        compileEntries(children, 1, start);
    report.binsPrewarmed = prewarm.uniqueBlocks;
    report.synthRuns = prewarm.synthRuns;
    report.cacheHits = prewarm.cacheHits;
    report.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();

    quantRefineRounds_.fetch_add(1, std::memory_order_relaxed);
    quantSplits_.fetch_add(
        static_cast<std::uint64_t>(report.leavesSplit),
        std::memory_order_relaxed);
    quantStaleReleased_.fetch_add(
        static_cast<std::uint64_t>(report.staleReleased),
        std::memory_order_relaxed);
    quantBytesReleased_.fetch_add(
        static_cast<std::uint64_t>(report.bytesReleased),
        std::memory_order_relaxed);
    return report;
}

AdaptiveGridStats
CompileService::quantizedGridStats(const ServingPlan& plan) const
{
    AdaptiveGridStats out;
    for (const auto& [kind, axis_ptr] : plan.adaptiveAxes_) {
        const ServingPlan::AdaptiveAxis& axis = *axis_ptr;
        std::lock_guard<std::mutex> lock(axis.mu);
        ++out.axes;
        out.leaves += axis.grid.numLeaves();
        out.maxDepth = std::max(out.maxDepth, axis.grid.maxDepthInUse());
        out.splits += axis.grid.splits();
        for (const auto& [key, state] : axis.leaves)
            out.worstCaseBound = std::max(out.worstCaseBound,
                                          state.leaf.halfWidth / 2.0);
    }
    return out;
}

Circuit
CompileService::snapServedRotations(const ServingPlan& plan,
                                    const Circuit& symbolic,
                                    const std::vector<double>& theta)
    const
{
    if (!plan.quant_.enabled || !plan.quant_.adaptive)
        return snapSymbolicRotations(symbolic, theta, plan.quant_);
    Circuit bound(symbolic.numQubits());
    for (const GateOp& op : symbolic.ops()) {
        GateOp next = op;
        if (gateIsRotation(op.kind)) {
            const double angle = op.angle.bind(theta);
            double value = angle;
            if (op.angle.isSymbolic()) {
                const auto axis_it = plan.adaptiveAxes_.find(op.kind);
                panicIf(axis_it == plan.adaptiveAxes_.end(),
                        "serving plan is missing an adaptive axis");
                ServingPlan::AdaptiveAxis& axis = *axis_it->second;
                double representative;
                {
                    // Locate only — simulation must not feed the
                    // visit counters serve() already fed for this
                    // binding.
                    std::lock_guard<std::mutex> lock(axis.mu);
                    representative =
                        axis.grid.locate(angle).representative;
                }
                if (quantizationErrorBound(wrappedAngleDelta(
                        angle, representative)) <=
                    plan.quant_.fidelityBudget)
                    value = representative;
            }
            next.angle = ParamExpr::constant(value);
        }
        bound.add(next);
    }
    return bound;
}

ServiceStats
CompileService::stats() const
{
    ServiceStats out;
    out.requests = requests_.load(std::memory_order_relaxed);
    out.cacheHits = cacheHits_.load(std::memory_order_relaxed);
    out.coalesced = coalesced_.load(std::memory_order_relaxed);
    out.synthRuns = synthRuns_.load(std::memory_order_relaxed);
    out.rejected = rejected_.load(std::memory_order_relaxed);
    out.quantHits = quantHits_.load(std::memory_order_relaxed);
    out.quantMisses = quantMisses_.load(std::memory_order_relaxed);
    out.quantFallbacks =
        quantFallbacks_.load(std::memory_order_relaxed);
    out.exactServes = exactServes_.load(std::memory_order_relaxed);
    out.quantRefineRounds =
        quantRefineRounds_.load(std::memory_order_relaxed);
    out.quantSplits = quantSplits_.load(std::memory_order_relaxed);
    out.quantStaleReleased =
        quantStaleReleased_.load(std::memory_order_relaxed);
    out.quantBytesReleased =
        quantBytesReleased_.load(std::memory_order_relaxed);
    return out;
}

ServiceTelemetry
CompileService::telemetry() const
{
    ServiceTelemetry out;
    out.serveNs = serveNs_.snapshot();
    out.prepareNs = prepareNs_.snapshot();
    out.synthNs = synthNs_.snapshot();
    out.queueWaitNs = pool_.queueWaitSnapshot();
    out.jobRunNs = pool_.jobRunSnapshot();
    const CacheTelemetry cache = cache_.telemetry();
    out.cacheGetNs = cache.getNs;
    out.cachePutNs = cache.putNs;
    out.diskReadNs = cache.diskReadNs;
    out.diskWriteNs = cache.diskWriteNs;
    return out;
}

} // namespace qpc
