#include "runtime/service.h"

#include <chrono>
#include <memory>
#include <thread>

#include "common/logging.h"
#include "model/timemodel.h"
#include "pulse/device.h"
#include "pulse/library.h"
#include "sim/statevector.h"
#include "transpile/blocking.h"

namespace qpc {

namespace {

/** One strict segment's rotation, rebuilt at a grid bin's angle. */
Circuit
snappedRotation(const Circuit& gate, std::int64_t bin, int bins)
{
    Circuit snapped(gate.numQubits());
    GateOp op = gate.ops().front();
    op.angle = ParamExpr::constant(binAngle(bin, bins));
    snapped.add(op);
    return snapped;
}

/** Analytic library pulse for one local block on a clique device. */
PulseSchedule
analyticPulse(const Circuit& block, double dt)
{
    const DeviceModel device =
        DeviceModel::gmonClique(std::max(1, block.numQubits()));
    const GatePulseLibrary library(device, dt);
    return library.compileCircuit(block);
}

} // namespace

BlockSynthesizer
analyticBlockSynthesizer(double dt)
{
    fatalIf(dt <= 0.0, "sample period must be positive");
    return [dt](const Circuit& block) {
        return analyticPulse(block, dt);
    };
}

BlockSynthesizer
grapeBlockSynthesizer(GrapeOptions options)
{
    return [options](const Circuit& block) {
        const DeviceModel device =
            DeviceModel::gmonClique(std::max(1, block.numQubits()));
        const CMatrix target = circuitUnitary(block);
        const double time_ns = PulseTimeModel().blockTimeNs(block);
        const GrapeResult result =
            runGrapeFixedTime(device, target, time_ns, options);
        return result.pulse;
    };
}

BlockSynthesizer
modeledLatencySynthesizer(double time_scale, double dt,
                          LatencyModelParams params)
{
    fatalIf(time_scale < 0.0, "time scale must be non-negative");
    auto latency = std::make_shared<GrapeLatencyModel>(params);
    auto time_model = std::make_shared<PulseTimeModel>();
    return [time_scale, dt, latency, time_model](const Circuit& block) {
        const double pulse_ns = time_model->blockTimeNs(block);
        const double seconds =
            time_scale *
            latency->fullGrapeSeconds(block.numQubits(), pulse_ns);
        if (seconds > 0.0)
            std::this_thread::sleep_for(
                std::chrono::duration<double>(seconds));
        return analyticPulse(block, dt);
    };
}

CompileService::CompileService(CompileServiceOptions options)
    : options_(std::move(options)), cache_(options_.cache),
      pool_(options_.numWorkers, options_.maxQueuedJobs)
{
    fatalIf(options_.maxBlockWidth <= 0,
            "block width cap must be positive");
    fatalIf(options_.quantization.enabled &&
                (options_.quantization.bins <= 0 ||
                 options_.quantization.fidelityBudget < 0.0),
            "quantization needs a positive bin count and a "
            "non-negative fidelity budget");
    if (!options_.synthesizer)
        options_.synthesizer = analyticBlockSynthesizer(options_.lookupDt);
}

CompileService::~CompileService() = default;

CompileService::PulseFuture
CompileService::requestBlock(const Circuit& block, AdmitOutcome* outcome)
{
    return admit(fingerprintBlock(block), block, outcome,
                 /*force_block=*/false);
}

namespace {

CompileService::PulseFuture
readyFuture(PulsePtr pulse)
{
    std::promise<PulsePtr> ready;
    ready.set_value(std::move(pulse));
    return ready.get_future().share();
}

} // namespace

CompileService::PulseFuture
CompileService::admit(const BlockFingerprint& fp, const Circuit& block,
                      AdmitOutcome* outcome, bool force_block)
{
    requests_.fetch_add(1, std::memory_order_relaxed);

    // Optimistic full lookup (memory, then disk) outside the
    // admission lock: disk I/O must never serialize every requester
    // behind inflightMu_.
    if (PulsePtr cached = cache_.get(fp)) {
        cacheHits_.fetch_add(1, std::memory_order_relaxed);
        if (outcome)
            *outcome = AdmitOutcome::CacheHit;
        return readyFuture(std::move(cached));
    }
    return admitAfterMiss(fp, block, outcome, force_block);
}

CompileService::PulseFuture
CompileService::admitAfterMiss(const BlockFingerprint& fp,
                               const Circuit& block,
                               AdmitOutcome* outcome, bool force_block)
{
    // Admission under one lock: join an in-flight synthesis, or
    // re-check the memory tier (the worker inserts there *before*
    // erasing its in-flight entry, so a requester that misses the
    // in-flight map finds the pulse), or start a flight. Together
    // these guarantee at most one synthesis per fingerprint while it
    // stays cached.
    std::unique_lock<std::mutex> lock(inflightMu_);
    auto it = inflight_.find(fp);
    if (it != inflight_.end()) {
        coalesced_.fetch_add(1, std::memory_order_relaxed);
        if (outcome)
            *outcome = AdmitOutcome::Coalesced;
        return it->second;
    }
    if (PulsePtr cached = cache_.peekMemory(fp)) {
        cacheHits_.fetch_add(1, std::memory_order_relaxed);
        if (outcome)
            *outcome = AdmitOutcome::CacheHit;
        return readyFuture(std::move(cached));
    }
    auto completion = std::make_shared<std::promise<PulsePtr>>();
    PulseFuture future = completion->get_future().share();

    // Worker-side ordering: cache.put, then in-flight erase, then
    // promise resolution. Pairs with the admission order above for the
    // at-most-once guarantee, and means a requester arriving after a
    // waiter's get() returns deterministically finds the cache entry
    // rather than a stale in-flight record.
    auto job = [this, fp, block, completion] {
        std::exception_ptr failure;
        PulsePtr pulse;
        try {
            pulse = std::make_shared<const PulseSchedule>(
                options_.synthesizer(block));
            synthRuns_.fetch_add(1, std::memory_order_relaxed);
            cache_.put(fp, pulse);
        } catch (...) {
            failure = std::current_exception();
        }
        {
            std::lock_guard<std::mutex> guard(inflightMu_);
            inflight_.erase(fp);
        }
        if (failure)
            completion->set_exception(failure);
        else
            completion->set_value(std::move(pulse));
    };

    if (!force_block &&
        options_.queueFullPolicy == QueueFullPolicy::Reject &&
        options_.maxQueuedJobs > 0) {
        // Reserve-or-refuse while still holding inflightMu_: nobody
        // can have coalesced onto this flight yet, so refusing leaves
        // no dangling future behind, and the in-flight entry is
        // published before the job can possibly run and erase it.
        inflight_.emplace(fp, future);
        if (!pool_.trySubmit(std::move(job))) {
            inflight_.erase(fp);
            lock.unlock();
            rejected_.fetch_add(1, std::memory_order_relaxed);
            if (outcome)
                *outcome = AdmitOutcome::Rejected;
            return PulseFuture{};
        }
        lock.unlock();
    } else {
        // Publish the flight, release the lock, then submit: if the
        // bounded queue makes submit() block, concurrent requesters of
        // this fingerprint still coalesce instead of piling onto
        // inflightMu_.
        inflight_.emplace(fp, future);
        lock.unlock();
        pool_.submit(std::move(job));
    }
    if (outcome)
        *outcome = AdmitOutcome::Started;
    return future;
}

PulseSchedule
CompileService::compileBlock(const Circuit& block)
{
    return *admit(fingerprintBlock(block), block, nullptr,
                  /*force_block=*/true)
                .get();
}

void
CompileService::appendFixedEntries(
    const Circuit& segment_circuit,
    std::vector<ServingPlan::FixedEntry>& out) const
{
    const Blocking blocking =
        aggregateBlocks(segment_circuit, options_.maxBlockWidth);
    for (const CircuitBlock& block : blocking.blocks) {
        ServingPlan::FixedEntry entry;
        entry.local = block.asCircuit(segment_circuit);
        entry.fingerprint = fingerprintBlock(entry.local);
        out.push_back(std::move(entry));
    }
}

std::vector<ServingPlan::FixedEntry>
CompileService::collectFixedEntries(const Circuit& template_circuit) const
{
    std::vector<ServingPlan::FixedEntry> entries;
    const StrictPartition partition = strictPartition(template_circuit);
    for (const StrictSegment& segment : partition.segments)
        if (segment.fixed && !segment.circuit.empty())
            appendFixedEntries(segment.circuit, entries);
    return entries;
}

std::vector<Circuit>
CompileService::fixedBlocksOf(const Circuit& template_circuit) const
{
    std::vector<Circuit> blocks;
    for (ServingPlan::FixedEntry& entry :
         collectFixedEntries(template_circuit))
        blocks.push_back(std::move(entry.local));
    return blocks;
}

BatchCompileReport
CompileService::compileEntries(
    const std::vector<ServingPlan::FixedEntry>& entries, int circuits,
    std::chrono::steady_clock::time_point start)
{
    BatchCompileReport report;
    report.circuits = circuits;
    report.totalBlocks = static_cast<int>(entries.size());

    // Dedupe before a single job is enqueued: shared structure (QAOA
    // sweeps over one graph, repeated UCCSD entanglers) collapses
    // here.
    std::unordered_map<BlockFingerprint, const Circuit*,
                       BlockFingerprintHash>
        unique;
    for (const ServingPlan::FixedEntry& entry : entries)
        unique.emplace(entry.fingerprint, &entry.local);
    report.uniqueBlocks = static_cast<int>(unique.size());

    // Per-batch accounting comes from admission outcomes, not from
    // deltas of the service-wide counters: a shared service may be
    // compiling other callers' batches concurrently.
    std::vector<PulseFuture> pending;
    pending.reserve(unique.size());
    for (const auto& [fp, block] : unique) {
        AdmitOutcome outcome = AdmitOutcome::CacheHit;
        // Batch admissions always block for queue space: the report
        // promises every unique block resolves, so backpressure slows
        // the batch down rather than thinning it out.
        pending.push_back(
            admit(fp, *block, &outcome, /*force_block=*/true));
        switch (outcome) {
        case AdmitOutcome::CacheHit:
            ++report.cacheHits;
            break;
        case AdmitOutcome::Started:
            ++report.synthRuns;
            break;
        case AdmitOutcome::Coalesced:
            ++report.coalesced;
            break;
        case AdmitOutcome::Rejected:
            panic("blocking batch admission cannot be rejected");
        }
    }
    for (PulseFuture& future : pending)
        future.get();

    report.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    return report;
}

BatchCompileReport
CompileService::compileBatch(const std::vector<Circuit>& templates)
{
    const auto start = std::chrono::steady_clock::now();
    std::vector<ServingPlan::FixedEntry> entries;
    for (const Circuit& template_circuit : templates)
        for (ServingPlan::FixedEntry& entry :
             collectFixedEntries(template_circuit))
            entries.push_back(std::move(entry));
    return compileEntries(entries, static_cast<int>(templates.size()),
                          start);
}

BatchCompileReport
CompileService::precompileCircuit(const Circuit& template_circuit)
{
    return compileBatch({template_circuit});
}

BatchCompileReport
CompileService::precompilePlan(const ServingPlan& plan)
{
    const auto start = std::chrono::steady_clock::now();
    std::vector<ServingPlan::FixedEntry> entries;
    for (const ServingPlan::PlanSegment& segment : plan.segments_)
        for (const ServingPlan::FixedEntry& entry : segment.blocks)
            entries.push_back(entry);
    return compileEntries(entries, 1, start);
}

BatchCompileReport
CompileService::prewarmQuantizedBins(const ServingPlan& plan)
{
    const auto start = std::chrono::steady_clock::now();
    const ParamQuantization& quantization = plan.quant_;
    if (!quantization.enabled) {
        BatchCompileReport report;
        report.wallSeconds = 0.0;
        return report;
    }

    // Enumerate the grid once per distinct snapped circuit: segments
    // sharing a rotation axis (every QAOA mixer Rx, say) collapse in
    // compileEntries' fingerprint dedupe, so the worker pool sees each
    // (axis, bin) exactly once.
    std::vector<ServingPlan::FixedEntry> entries;
    for (const ServingPlan::PlanSegment& segment : plan.segments_) {
        if (segment.fixed)
            continue;
        const auto table =
            plan.binTables_.find(segment.gate.ops().front().kind);
        panicIf(table == plan.binTables_.end(),
                "serving plan is missing a quantized bin table");
        for (int bin = 0; bin < quantization.bins; ++bin) {
            ServingPlan::FixedEntry entry;
            entry.fingerprint =
                table->second[static_cast<std::size_t>(bin)];
            entry.local =
                snappedRotation(segment.gate, bin, quantization.bins);
            entries.push_back(std::move(entry));
        }
    }
    return compileEntries(entries, 1, start);
}

int
ServingPlan::numFixedBlocks() const
{
    int count = 0;
    for (const PlanSegment& segment : segments_)
        if (segment.fixed)
            count += static_cast<int>(segment.blocks.size());
    return count;
}

int
ServingPlan::numParamGates() const
{
    int count = 0;
    for (const PlanSegment& segment : segments_)
        if (!segment.fixed)
            ++count;
    return count;
}

ServingPlan
CompileService::prepareServing(const StrictPartition& partition) const
{
    return prepareServing(partition, options_.quantization);
}

ServingPlan
CompileService::prepareServing(const StrictPartition& partition,
                               const ParamQuantization& quantization)
    const
{
    // Per-plan overrides (driver knobs) get the same validation the
    // constructor applies to the service-wide default, so an invalid
    // config fails here rather than deep inside the first serve().
    fatalIf(quantization.enabled &&
                (quantization.bins <= 0 ||
                 quantization.fidelityBudget < 0.0),
            "quantization needs a positive bin count and a "
            "non-negative fidelity budget");
    ServingPlan plan;
    plan.quant_ = quantization;
    for (const StrictSegment& segment : partition.segments) {
        if (segment.fixed) {
            if (segment.circuit.empty())
                continue;
            ServingPlan::PlanSegment out;
            out.fixed = true;
            appendFixedEntries(segment.circuit, out.blocks);
            plan.segments_.push_back(std::move(out));
        } else {
            // Relabel the lone symbolic rotation to local qubits; its
            // blocking never depends on the binding, so none of this
            // repeats per iteration.
            panicIf(segment.circuit.size() != 1,
                    "non-fixed segment must hold exactly one gate");
            const GateOp& op = segment.circuit.ops().front();
            ServingPlan::PlanSegment out;
            out.fixed = false;
            const int width = op.arity();
            Circuit local(width);
            GateOp relabeled = op;
            relabeled.q0 = 0;
            if (width == 2)
                relabeled.q1 = 1;
            local.add(relabeled);
            out.gate = std::move(local);
            if (!plan.kits_.count(width))
                plan.kits_.emplace(
                    width, std::make_unique<ServingPlan::LookupKit>(
                               width, options_.lookupDt));
            // Fingerprint the whole grid for this axis once: serve()
            // then maps binding -> bin -> address by array index.
            if (quantization.enabled &&
                !plan.binTables_.count(relabeled.kind)) {
                std::vector<BlockFingerprint> table;
                table.reserve(quantization.bins);
                for (int bin = 0; bin < quantization.bins; ++bin)
                    table.push_back(fingerprintBlock(snappedRotation(
                        out.gate, bin, quantization.bins)));
                plan.binTables_.emplace(relabeled.kind,
                                        std::move(table));
            }
            plan.segments_.push_back(std::move(out));
        }
    }
    return plan;
}

ServedPulse
CompileService::serve(const ServingPlan& plan,
                      const std::vector<double>& theta)
{
    ServedPulse served;
    for (const ServingPlan::PlanSegment& segment : plan.segments_) {
        if (segment.fixed) {
            for (const ServingPlan::FixedEntry& entry : segment.blocks) {
                // Warm path: probe the cache directly — no promise /
                // future machinery for a value that is already there.
                // One logical lookup, counted once: the probe is the
                // only CacheStats lookup (a miss hands the result to
                // admitAfterMiss rather than re-probing), and the
                // service-wide request/hit counters see every serve.
                requests_.fetch_add(1, std::memory_order_relaxed);
                PulsePtr pulse = cache_.get(entry.fingerprint);
                if (pulse) {
                    cacheHits_.fetch_add(1, std::memory_order_relaxed);
                    ++served.cacheHits;
                } else {
                    ++served.cacheMisses;
                    pulse = admitAfterMiss(entry.fingerprint,
                                           entry.local, nullptr,
                                           /*force_block=*/true)
                                .get();
                }
                served.pulseNs += pulse->durationNs();
                served.segments.push_back(std::move(pulse));
            }
        } else {
            // A parametrized rotation. Quantized serving snaps the
            // binding onto the angle grid and resolves the bin through
            // the content-addressed cache — one synthesis per bin,
            // ever — falling back to the exact path when the snap
            // would overdraw the fidelity budget (or quantization is
            // off): an analytic lookup synthesized per binding, never
            // cached.
            if (plan.quant_.enabled) {
                const GateOp& op = segment.gate.ops().front();
                const double angle = op.angle.bind(theta);
                const double bound = quantizationErrorBound(
                    snapDelta(angle, plan.quant_.bins));
                if (bound <= plan.quant_.fidelityBudget) {
                    const std::int64_t bin =
                        angleBin(angle, plan.quant_.bins);
                    const auto table = plan.binTables_.find(op.kind);
                    panicIf(table == plan.binTables_.end(),
                            "serving plan is missing a quantized bin "
                            "table");
                    const BlockFingerprint& fp =
                        table->second[static_cast<std::size_t>(bin)];
                    served.quantErrorBound += bound;
                    // Same single-probe discipline as the Fixed path:
                    // the bin lookup is one logical request, counted
                    // once in CacheStats and in the service counters.
                    requests_.fetch_add(1, std::memory_order_relaxed);
                    PulsePtr pulse = cache_.get(fp);
                    if (pulse) {
                        cacheHits_.fetch_add(1,
                                             std::memory_order_relaxed);
                        ++served.quantHits;
                        quantHits_.fetch_add(1,
                                             std::memory_order_relaxed);
                    } else {
                        ++served.quantMisses;
                        quantMisses_.fetch_add(
                            1, std::memory_order_relaxed);
                        pulse = admitAfterMiss(
                                    fp,
                                    snappedRotation(segment.gate, bin,
                                                    plan.quant_.bins),
                                    nullptr, /*force_block=*/true)
                                    .get();
                    }
                    served.pulseNs += pulse->durationNs();
                    served.segments.push_back(std::move(pulse));
                    continue;
                }
                ++served.quantFallbacks;
                quantFallbacks_.fetch_add(1, std::memory_order_relaxed);
            }
            const auto kit =
                plan.kits_.find(segment.gate.numQubits());
            panicIf(kit == plan.kits_.end(),
                    "serving plan is missing a lookup kit");
            PulsePtr pulse = std::make_shared<const PulseSchedule>(
                kit->second->library.compileCircuit(
                    segment.gate.bind(theta)));
            served.pulseNs += pulse->durationNs();
            served.segments.push_back(std::move(pulse));
        }
    }
    return served;
}

ServedPulse
CompileService::serveStrict(const StrictPartition& partition,
                            const std::vector<double>& theta)
{
    const ServingPlan plan = prepareServing(partition);
    return serve(plan, theta);
}

ServiceStats
CompileService::stats() const
{
    ServiceStats out;
    out.requests = requests_.load(std::memory_order_relaxed);
    out.cacheHits = cacheHits_.load(std::memory_order_relaxed);
    out.coalesced = coalesced_.load(std::memory_order_relaxed);
    out.synthRuns = synthRuns_.load(std::memory_order_relaxed);
    out.rejected = rejected_.load(std::memory_order_relaxed);
    out.quantHits = quantHits_.load(std::memory_order_relaxed);
    out.quantMisses = quantMisses_.load(std::memory_order_relaxed);
    out.quantFallbacks =
        quantFallbacks_.load(std::memory_order_relaxed);
    return out;
}

} // namespace qpc
