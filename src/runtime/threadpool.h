/**
 * @file
 * Fixed-size worker pool for compilation jobs.
 *
 * Deliberately minimal: a mutex-guarded FIFO and N workers. The
 * compile service layers futures and single-flight deduplication on
 * top, so the pool itself only needs ordered, exactly-once execution.
 * Destruction drains the queue before joining — a submitted job always
 * runs, which is what lets the service guarantee every issued
 * shared_future resolves.
 */

#ifndef QPC_RUNTIME_THREADPOOL_H
#define QPC_RUNTIME_THREADPOOL_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace qpc {

/** N worker threads draining one FIFO of jobs. */
class ThreadPool
{
  public:
    /** @param num_workers Worker count; 0 = hardware concurrency. */
    explicit ThreadPool(int num_workers = 0);

    /** Drains every queued job, then joins. */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Enqueue a job for asynchronous execution. */
    void submit(std::function<void()> job);

    int numWorkers() const { return static_cast<int>(workers_.size()); }

  private:
    void workerLoop();

    std::mutex mu_;
    std::condition_variable cv_;
    std::deque<std::function<void()>> queue_;
    bool stopping_ = false;
    std::vector<std::thread> workers_;
};

} // namespace qpc

#endif // QPC_RUNTIME_THREADPOOL_H
