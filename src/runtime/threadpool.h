/**
 * @file
 * Fixed-size worker pool for compilation jobs.
 *
 * Deliberately minimal: a mutex-guarded FIFO and N workers. The
 * compile service layers futures and single-flight deduplication on
 * top, so the pool itself only needs ordered, exactly-once execution.
 * Destruction drains the queue before joining — a submitted job always
 * runs, which is what lets the service guarantee every issued
 * shared_future resolves.
 *
 * Admission control: an optional `max_queued_jobs` bound caps the
 * FIFO. submit() then blocks the producer until a worker frees a slot
 * (backpressure — N drivers hammering one pool degrade to the pool's
 * throughput instead of ballooning memory), while trySubmit() refuses
 * immediately so callers can surface the rejection.
 *
 * Shutdown never strands a producer: stopping the pool wakes every
 * submitter blocked on a full queue and refuses its job (submit()
 * returns false) instead of deadlocking it — or aborting the process —
 * which is what lets a daemon embedding the pool honor SIGTERM while
 * load is still arriving. Jobs accepted before the stop still run to
 * completion.
 */

#ifndef QPC_RUNTIME_THREADPOOL_H
#define QPC_RUNTIME_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "telemetry/histogram.h"

namespace qpc {

/** N worker threads draining one FIFO of jobs. */
class ThreadPool
{
  public:
    /**
     * @param num_workers Worker count; 0 = hardware concurrency.
     * @param max_queued_jobs Queue bound; 0 = unbounded.
     */
    explicit ThreadPool(int num_workers = 0,
                        std::size_t max_queued_jobs = 0);

    /** Drains every queued job, then joins. */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /**
     * Enqueue a job for asynchronous execution. With a queue bound,
     * blocks until a slot frees up — the queue length never exceeds
     * maxQueuedJobs(). Returns true when the job was accepted (and
     * will run exactly once); false when the pool stopped first — a
     * producer blocked on a full queue is woken by shutdown and its
     * job refused, never run.
     */
    [[nodiscard]] bool submit(std::function<void()> job);

    /**
     * Enqueue without blocking: false (job not taken) when the bound
     * is reached or the pool is stopping, true otherwise. Always
     * succeeds on a running unbounded pool.
     */
    [[nodiscard]] bool trySubmit(std::function<void()> job);

    int numWorkers() const { return static_cast<int>(workers_.size()); }
    std::size_t maxQueuedJobs() const { return maxQueued_; }

    /** Jobs currently waiting (excludes jobs being executed). */
    std::size_t queueDepth() const;

    /** High-water mark of the queue over the pool's lifetime. */
    std::size_t peakQueueDepth() const;

    /** Distribution of time jobs spent waiting in the FIFO (ns). */
    HistogramSnapshot queueWaitSnapshot() const
    {
        return queueWaitNs_.snapshot();
    }

    /** Distribution of job execution times (ns). */
    HistogramSnapshot jobRunSnapshot() const
    {
        return jobRunNs_.snapshot();
    }

  private:
    /**
     * A queued job plus the telemetry that must travel with it: when
     * it was enqueued (for the queue-wait histogram and retroactive
     * queue-wait trace span) and the submitter's current span id, so
     * work executed on a worker nests under the span that caused it.
     */
    struct QueuedJob
    {
        std::function<void()> fn;
        std::uint64_t enqueueNs = 0;
        std::uint64_t traceParent = 0;
    };

    void workerLoop();
    /** Push under mu_ (already held) and maintain the high-water mark. */
    void enqueueLocked(std::function<void()>&& job);

    mutable std::mutex mu_;
    std::condition_variable cv_;
    /** Producers blocked in submit() wait here for a free slot. */
    std::condition_variable spaceCv_;
    std::deque<QueuedJob> queue_;
    LatencyHistogram queueWaitNs_;
    LatencyHistogram jobRunNs_;
    std::size_t maxQueued_ = 0;
    std::size_t peakDepth_ = 0;
    bool stopping_ = false;
    std::vector<std::thread> workers_;
};

} // namespace qpc

#endif // QPC_RUNTIME_THREADPOOL_H
