/**
 * @file
 * Parallel, deduplicating, cache-backed pulse compilation service.
 *
 * The paper's economics are amortization: GRAPE-precompile the Fixed
 * blocks of a variational template once, then serve thousands of
 * VQE/QAOA iterations by lookup-and-concatenate. This service is the
 * machinery that makes the "once" cheap and the "thousands" instant:
 *
 *  - content addressing: every block is keyed by its BlockFingerprint,
 *    so identical subcircuits — within one circuit, across the
 *    circuits of a batch, or across process runs via the disk tier —
 *    resolve to one synthesis;
 *  - single flight: concurrent requests for the same fingerprint
 *    coalesce onto one in-flight future; exactly one synthesizer run
 *    happens no matter how many callers race;
 *  - batching: compileBatch() accepts many circuit templates (a QAOA
 *    sweep, a VQE iteration stream), dedupes their Fixed blocks
 *    *across* circuits, and fans the unique remainder out to a worker
 *    pool.
 *
 * The actual pulse synthesis is pluggable (BlockSynthesizer): real
 * GRAPE for production, the analytic library for fast exact pulses,
 * or a latency-model-paced stand-in for scheduling benchmarks.
 */

#ifndef QPC_RUNTIME_SERVICE_H
#define QPC_RUNTIME_SERVICE_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <mutex>
#include <unordered_map>
#include <vector>

#include <map>
#include <memory>

#include "cache/pulsecache.h"
#include "cache/quantize.h"
#include "grape/grape.h"
#include "ir/circuit.h"
#include "model/calibration.h"
#include "model/latencymodel.h"
#include "partial/strict.h"
#include "pulse/device.h"
#include "pulse/library.h"
#include "pulse/schedule.h"
#include "runtime/threadpool.h"
#include "telemetry/histogram.h"

namespace qpc {

/** Pulse synthesis backend: local (relabeled) block in, pulse out. */
using BlockSynthesizer = std::function<PulseSchedule(const Circuit&)>;

/** Exact analytic pulses from the gate library (fast, deterministic). */
BlockSynthesizer analyticBlockSynthesizer(double dt = 0.05);

/** Real GRAPE against the block unitary on a clique device. */
BlockSynthesizer grapeBlockSynthesizer(GrapeOptions options = {});

/**
 * Analytic pulses paced by the calibrated GRAPE latency model: sleeps
 * time_scale x fullGrapeSeconds(block) before returning, so service
 * scheduling and worker scaling can be benchmarked at a realistic
 * latency *shape* without the paper's CPU-core-hours.
 */
BlockSynthesizer modeledLatencySynthesizer(double time_scale,
                                           double dt = 0.05,
                                           LatencyModelParams params = {});

/** What happens to a fresh synthesis when the worker queue is full. */
enum class QueueFullPolicy
{
    /**
     * Block the admitting caller until a slot frees (default):
     * concurrent drivers degrade to the pool's throughput. Other
     * requesters of the same fingerprint still coalesce onto the
     * in-flight future without blocking.
     */
    Block,
    /**
     * Refuse immediately: requestBlock() returns an invalid future and
     * reports AdmitOutcome::Rejected, so a latency-sensitive caller
     * can shed load instead of waiting. Batch precompute and serve()
     * always block (they must deliver every pulse they promised).
     */
    Reject,
};

/** How one admission resolved (drives per-batch accounting). */
enum class AdmitOutcome
{
    CacheHit,  ///< Served straight from the cache.
    Coalesced, ///< Joined an already-in-flight synthesis.
    Started,   ///< Started a fresh synthesis.
    Rejected,  ///< Queue full under QueueFullPolicy::Reject.
};

/** Configuration of one CompileService. */
struct CompileServiceOptions
{
    /** Worker threads; 0 = hardware concurrency. */
    int numWorkers = 0;
    /**
     * Bound on queued (not yet executing) synthesis jobs; 0 =
     * unbounded. With a bound, the pool queue length never exceeds it:
     * admissions past the bound either block or are rejected per
     * queueFullPolicy.
     */
    std::size_t maxQueuedJobs = 0;
    /** Overflow behaviour when maxQueuedJobs is reached. */
    QueueFullPolicy queueFullPolicy = QueueFullPolicy::Block;
    /** GRAPE width cap applied when blocking Fixed segments. */
    int maxBlockWidth = 4;
    /** Block synthesis backend; defaults to the analytic library. */
    BlockSynthesizer synthesizer;
    /** Sample period for served parametrized-gate lookups, ns. */
    double lookupDt = 0.05;
    /** Cache sizing/placement (diskDir enables persistence). */
    PulseCacheOptions cache;
    /**
     * Angle-quantized caching of Parametrized blocks on the serve
     * path (see cache/quantize.h). Disabled by default: serve()
     * synthesizes every rotation binding exactly. Enabled, each
     * binding snaps to a fidelity-bounded grid bin and resolves
     * through the content-addressed cache, so a warm grid turns the
     * per-iteration hot path into pure lookups.
     */
    ParamQuantization quantization;
    /**
     * Calibration epoch the service starts in. Every fingerprint the
     * service mints is stamped with the *current* epoch (see
     * bumpEpoch()), so cached pulses are keyed to the device
     * calibration they were synthesized against. The zero epoch (the
     * default) keeps legacy keying. Also forwarded into the cache's
     * options so disk-tier adoption honours it.
     */
    CalibrationEpoch epoch;
};

/** Service-level counters, snapshotted by CompileService::stats(). */
struct ServiceStats
{
    /** Block lookups: requestBlock()/batch admissions, serve()'s
     * direct warm-path probes, *and* serve()'s per-binding exact
     * rotation syntheses (fallbacks / quantization off) — every
     * logical "give me this block", so hit rates keep an honest
     * denominator even under fallback-heavy workloads. */
    std::uint64_t requests = 0;
    std::uint64_t cacheHits = 0;  ///< Served straight from the cache.
    std::uint64_t coalesced = 0;  ///< Joined an in-flight synthesis.
    std::uint64_t synthRuns = 0;  ///< Synthesizer invocations.
    std::uint64_t rejected = 0;   ///< Admissions shed by backpressure.
    /** Parametrized rotations served by per-binding exact synthesis:
     * budget fallbacks plus quantization-off lookup serving. Counted
     * in `requests` too (they used to bypass it, skewing hit rates). */
    std::uint64_t exactServes = 0;

    /** @name Quantized parametric serving (zero when disabled)
     *  @{ */
    std::uint64_t quantHits = 0;      ///< Rotation bins served warm.
    std::uint64_t quantMisses = 0;    ///< First touches of a bin.
    std::uint64_t quantFallbacks = 0; ///< Budget-exceeded exact serves.
    /** @} */

    /** @name Adaptive grid refinement (zero unless adaptive)
     *  @{ */
    std::uint64_t quantRefineRounds = 0; ///< refineQuantizedGrid calls
                                         ///< that did work.
    std::uint64_t quantSplits = 0;       ///< Leaves split in two.
    std::uint64_t quantStaleReleased = 0; ///< Parent pulses erased.
    std::uint64_t quantBytesReleased = 0; ///< Their bytes, returned to
                                          ///< the cache byte budget.
    /** @} */
};

/**
 * Latency distributions for the serve path, one histogram per phase.
 * Snapshotted by CompileService::telemetry(); all values are
 * nanoseconds. The pool and cache sections are re-exported here so
 * one call sees the whole path.
 */
struct ServiceTelemetry
{
    HistogramSnapshot serveNs;     ///< Whole serve() calls.
    HistogramSnapshot prepareNs;   ///< Whole prepareServing() calls.
    HistogramSnapshot synthNs;     ///< Individual synthesizer runs.
    HistogramSnapshot queueWaitNs; ///< Pool FIFO time-in-queue.
    HistogramSnapshot jobRunNs;    ///< Pool job execution time.
    HistogramSnapshot cacheGetNs;  ///< PulseCache::get() calls.
    HistogramSnapshot cachePutNs;  ///< PulseCache::put() calls.
    HistogramSnapshot diskReadNs;  ///< Disk-tier load attempts.
    HistogramSnapshot diskWriteNs; ///< Disk-tier persists.
};

/** What one batch submission cost and deduplicated. */
struct BatchCompileReport
{
    int circuits = 0;      ///< Templates submitted.
    int totalBlocks = 0;   ///< Fixed blocks before deduplication.
    int uniqueBlocks = 0;  ///< Distinct fingerprints compiled/looked up.
    std::uint64_t synthRuns = 0;  ///< Fresh syntheses this batch.
    std::uint64_t cacheHits = 0;  ///< Admission-time cache hits.
    /** Admissions that joined a synthesis another caller already had
     * in flight (a concurrent batch or serve). Every unique block is
     * accounted exactly once:
     * cacheHits + synthRuns + coalesced == uniqueBlocks. */
    std::uint64_t coalesced = 0;
    double wallSeconds = 0.0;     ///< End-to-end batch wall clock.

    /** Fraction of unique blocks served from cache. */
    double
    hitRate() const
    {
        return uniqueBlocks
                   ? static_cast<double>(cacheHits) / uniqueBlocks
                   : 0.0;
    }
};

/** A warm-path compilation assembled by lookup-and-concatenate. */
struct ServedPulse
{
    /**
     * One pulse per Fixed block / parametrized gate, program order.
     * Cached blocks are shared with the cache (no sample copies);
     * lookup pulses are owned by this result.
     */
    std::vector<PulsePtr> segments;
    /** Serial (concatenated) duration, ns. */
    double pulseNs = 0.0;
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;

    /** @name Quantized rotation serving (zero when disabled)
     *  @{ */
    std::uint64_t quantHits = 0;      ///< Rotation bins served warm.
    std::uint64_t quantMisses = 0;    ///< Bins synthesized on touch.
    std::uint64_t quantFallbacks = 0; ///< Rotations served exactly
                                      ///< (budget exceeded).
    /** Rotations served by per-binding exact synthesis: the budget
     * fallbacks above plus every rotation when quantization is off. */
    std::uint64_t exactServes = 0;
    /** Summed advertised operator-norm error of every snap served. */
    double quantErrorBound = 0.0;
    /** @} */
};

/** What one adaptive-grid refinement round split, warmed, released. */
struct RefinementReport
{
    int axesRefined = 0;   ///< Axes with at least one split.
    int leavesSplit = 0;   ///< Parent leaves split in two.
    int binsPrewarmed = 0; ///< Unique child representatives admitted
                           ///< through the pool.
    std::uint64_t synthRuns = 0;  ///< Fresh child syntheses paid.
    std::uint64_t cacheHits = 0;  ///< Children already cached (shared
                                  ///< representatives).
    int staleReleased = 0;        ///< Parent pulses erased from memory.
    std::size_t bytesReleased = 0; ///< Their bytes, returned to the
                                   ///< byte budget.
    double wallSeconds = 0.0;     ///< End-to-end round wall clock.
};

/** Snapshot of one plan's adaptive grids (all axes pooled). */
struct AdaptiveGridStats
{
    int axes = 0;             ///< Rotation axes under refinement.
    std::size_t leaves = 0;   ///< Served leaves across all axes.
    int maxDepth = 0;         ///< Deepest refinement anywhere.
    std::uint64_t splits = 0; ///< Lifetime splits across all axes.
    /** Largest per-rotation snap bound any current leaf can realize
     * (max over leaves of halfWidth / 2). */
    double worstCaseBound = 0.0;
};

/**
 * The iteration-invariant half of serving one strict partition,
 * computed once by CompileService::prepareServing(): Fixed segments
 * are blocked and fingerprinted up front, parametrized rotations are
 * relabeled to local qubits with their device/library pair built, so
 * serve() in the hybrid-loop hot path does nothing but cache lookups,
 * one angle binding per rotation, and concatenation.
 */
class ServingPlan
{
  public:
    ServingPlan() = default;

    /** Pre-fingerprinted Fixed blocks, across all Fixed segments. */
    int numFixedBlocks() const;
    /** Parametrized rotations served by analytic lookup. */
    int numParamGates() const;
    /** Effective quantization config this plan serves under. */
    const ParamQuantization& quantization() const { return quant_; }
    /** Calibration epoch captured at prepareServing(): every
     * fingerprint in this plan is stamped with it, so the plan keeps
     * serving its own epoch's pulses even after the service bumps. */
    const CalibrationEpoch& epoch() const { return epoch_; }

  private:
    friend class CompileService;
    /** Test seam: regression tests corrupt plan internals to prove
     * serve() fails loudly on inconsistent state. */
    friend struct ServingPlanTestPeer;

    /** A device and its pulse library with stable addresses (the
     * library holds a reference to the device). */
    struct LookupKit
    {
        LookupKit(int width, double dt)
            : device(DeviceModel::gmonClique(width)), library(device, dt)
        {
        }
        DeviceModel device;
        GatePulseLibrary library;
    };

    struct FixedEntry
    {
        BlockFingerprint fingerprint;
        Circuit local;
    };

    struct PlanSegment
    {
        bool fixed = true;
        /** Fixed path: pre-fingerprinted local blocks. */
        std::vector<FixedEntry> blocks;
        /** Lookup path: the symbolic rotation, relabeled local. */
        Circuit gate;
    };

    /**
     * Mutable per-axis half of the *adaptive* quantized path: the
     * multi-resolution grid topology, plus per-leaf fingerprints and
     * serve-visit counters. Guarded by `mu` — serve() locates leaves
     * and bumps visits under it, refineQuantizedGrid() splits hot
     * leaves under it, so a plan can be refined in place while other
     * threads serve from it. Held by shared_ptr so the state survives
     * plan moves and stays mutable behind serve()'s const plan.
     */
    struct AdaptiveAxis
    {
        /** One leaf's serve state. */
        struct LeafState
        {
            AdaptiveAngleGrid::Leaf leaf;
            BlockFingerprint fingerprint;
            std::uint64_t visits = 0;
        };
        mutable std::mutex mu;
        AdaptiveAngleGrid grid;
        /** The axis's relabeled local rotation (angle rebound per
         * representative when synthesizing leaves). */
        Circuit gate;
        /** Served leaves by AdaptiveAngleGrid::leafKey. */
        std::unordered_map<std::uint64_t, LeafState> leaves;
    };

    std::vector<PlanSegment> segments_;
    /** One kit per distinct rotation width (stable addresses). */
    std::map<int, std::unique_ptr<LookupKit>> kits_;
    /** Quantization config captured at prepareServing() time. */
    ParamQuantization quant_;
    /** Calibration epoch captured at prepareServing() time. */
    CalibrationEpoch epoch_;
    /**
     * Iteration-invariant half of the quantized path: the content
     * address of every grid bin's snapped rotation, per axis, computed
     * once at prepareServing() so serve() never re-derives a
     * fingerprint (hashing the snapped unitary per iteration would
     * cost more than the exact analytic lookup it replaces).
     */
    std::map<GateKind, std::vector<BlockFingerprint>> binTables_;
    /** Adaptive refinement state per axis (empty unless adaptive);
     * coarse leaves are seeded from binTables_, so an unsplit leaf
     * serves the very same cache entry as the fixed grid. */
    std::map<GateKind, std::shared_ptr<AdaptiveAxis>> adaptiveAxes_;
};

/**
 * The compilation service. Thread-safe; one instance is meant to be
 * shared by every driver thread of a process.
 */
class CompileService
{
  public:
    /** Resolved compilation: a shared handle on the cached pulse. */
    using PulseFuture = std::shared_future<PulsePtr>;

    explicit CompileService(CompileServiceOptions options = {});
    /** Joins the worker pool after draining queued syntheses. */
    ~CompileService();

    CompileService(const CompileService&) = delete;
    CompileService& operator=(const CompileService&) = delete;

    /**
     * Request one bound block. Returns immediately with a future that
     * resolves from cache, an in-flight duplicate, or a fresh worker
     * synthesis — in that order of preference. Under
     * QueueFullPolicy::Reject with a full queue, returns an *invalid*
     * future (future.valid() == false) and reports
     * AdmitOutcome::Rejected through `outcome`; under the default
     * Block policy it may block for queue space instead.
     */
    PulseFuture requestBlock(const Circuit& block,
                             AdmitOutcome* outcome = nullptr);

    /** Blocking convenience wrapper around requestBlock(); always
     * waits for queue space regardless of the overflow policy. */
    PulseSchedule compileBlock(const Circuit& block);

    /**
     * Pre-compile the Fixed blocks of many circuit templates at once,
     * deduplicating across circuits before fanning out to workers.
     * Blocks until every unique block's pulse is available.
     */
    BatchCompileReport
    compileBatch(const std::vector<Circuit>& templates);

    /** compileBatch() of one template. */
    BatchCompileReport precompileCircuit(const Circuit& template_circuit);

    /**
     * Pre-compile the Fixed blocks of an already-prepared serving
     * plan, reusing its blocking and fingerprints — the recommended
     * driver sequence is prepareServing() once, precompilePlan() once,
     * then serve() per iteration, so the template is partitioned and
     * fingerprinted exactly once.
     */
    BatchCompileReport precompilePlan(const ServingPlan& plan);

    /**
     * Precompute the iteration-invariant serving work for one strict
     * partition (blocking, fingerprints, lookup libraries). Do this
     * once before a hybrid loop; the plan stays valid for the
     * service's lifetime. The plan captures the service's quantization
     * config; the second overload overrides it per plan (drivers use
     * this to flip quantization on or off for one run).
     */
    ServingPlan prepareServing(const StrictPartition& partition) const;
    ServingPlan prepareServing(const StrictPartition& partition,
                               const ParamQuantization& quantization)
        const;

    /**
     * Grid pre-warm: synthesize every bin of every rotation axis the
     * plan serves (deduplicated across segments sharing an axis)
     * through the worker pool, so the hybrid loop's very first
     * iterations already hit the quantized cache. A no-op report when
     * the plan's quantization is disabled. Sizing note: the cache must
     * hold bins x distinct-axes entries on top of the Fixed blocks to
     * keep the warmed grid resident.
     */
    BatchCompileReport prewarmQuantizedBins(const ServingPlan& plan);

    /**
     * Warm-path compilation of one parameter binding: cached pulses
     * for the plan's Fixed blocks, analytic lookups for its
     * parametrized rotations. A cold block (evicted or never
     * pre-compiled) is synthesized on the spot and counted as a miss.
     */
    ServedPulse serve(const ServingPlan& plan,
                      const std::vector<double>& theta);

    /**
     * One adaptive-refinement round over a plan prepared with
     * quantization.adaptive: every leaf whose serve visits reached
     * splitVisitThreshold (hottest first, bounded by maxRefineDepth
     * and maxLeavesPerAxis) is split in two, the children's
     * representatives are pre-warmed through the worker pool, and the
     * stale parent pulses are erased from the cache's memory tier —
     * finer resolution exactly where the optimizer is converging,
     * paid for by the coarse entries it no longer serves. Thread-safe
     * against concurrent serve() on the same plan; a no-op report
     * when the plan is not adaptive (or nothing is hot). The VQE/QAOA
     * drivers call this on optimizer-movement signals; services
     * embedded elsewhere can call it on any schedule.
     */
    RefinementReport refineQuantizedGrid(const ServingPlan& plan);

    /** Snapshot of a plan's adaptive grids (zeros unless adaptive). */
    AdaptiveGridStats quantizedGridStats(const ServingPlan& plan) const;

    /**
     * The full-circuit binding the plan's served pulses actually
     * realize: each symbolic rotation snapped to its current grid
     * representative when the per-gate budget admits it (adaptive
     * leaves included), exact otherwise — what a driver must simulate
     * so reported energies honestly carry the grid error. Mirrors
     * serve()'s per-gate decisions; falls back to
     * snapSymbolicRotations() for non-adaptive plans. Does not count
     * grid visits (only serve() feeds refinement).
     */
    Circuit snapServedRotations(const ServingPlan& plan,
                                const Circuit& symbolic,
                                const std::vector<double>& theta) const;

    /** prepareServing + serve in one shot, for one-off callers. */
    ServedPulse serveStrict(const StrictPartition& partition,
                            const std::vector<double>& theta);

    /** Fixed blocks of a template, relabeled to local qubits. */
    std::vector<Circuit>
    fixedBlocksOf(const Circuit& template_circuit) const;

    /** The calibration epoch fingerprints are currently minted in. */
    CalibrationEpoch epoch() const;

    /**
     * Advance to a new calibration epoch: increments the monotonic
     * counter and (when `model_hash` is nonzero) adopts the new device
     * model hash. Every fingerprint minted afterwards — prepareServing
     * bin tables, batch precompute, serve-path probes — carries the
     * new epoch, so no pre-bump pulse can ever be served through a
     * post-bump plan. Plans prepared before the bump keep serving
     * their captured epoch until their owner re-prepares them (the
     * compile server does this for every live plan on a BumpEpoch
     * frame). Returns the new epoch.
     */
    CalibrationEpoch bumpEpoch(std::uint64_t model_hash = 0);

    /**
     * Adopt an externally determined epoch wholesale — a replica
     * restoring a serving snapshot must mint fingerprints in the
     * snapshot's epoch or its warm disk tier would read as stale.
     * Intended for boot-time use, before plans are prepared.
     */
    void setEpoch(const CalibrationEpoch& epoch);

    ServiceStats stats() const;

    /**
     * Latency distributions across the whole serve path: the
     * service's own phases plus the pool's queueing and the cache's
     * disk tier, assembled into one snapshot so a caller (the server,
     * the bench) reads a consistent picture from a single place.
     */
    ServiceTelemetry telemetry() const;

    CacheStats cacheStats() const { return cache_.stats(); }
    PulseCache& cache() { return cache_; }
    int numWorkers() const { return pool_.numWorkers(); }
    /** Synthesis jobs currently queued (excludes executing ones). */
    std::size_t queueDepth() const { return pool_.queueDepth(); }
    /** High-water mark of the synthesis queue; with maxQueuedJobs set
     * this never exceeds it. */
    std::size_t peakQueueDepth() const
    {
        return pool_.peakQueueDepth();
    }
    const CompileServiceOptions& options() const { return options_; }

  private:
    /**
     * Single-flight admission for a pre-fingerprinted block: one
     * optimistic full cache lookup, then admitAfterMiss(). force_block
     * overrides a Reject overflow policy for callers that must
     * deliver (batch precompute, compileBlock, serve).
     */
    PulseFuture admit(const BlockFingerprint& fp, const Circuit& block,
                      AdmitOutcome* outcome, bool force_block);

    /**
     * Admission after the caller already probed the cache and missed
     * (the probe's CacheStats lookup/miss is the one and only one
     * recorded for this logical request — serve() relies on that).
     * Joins an in-flight synthesis, re-checks the memory tier under
     * the lock, or starts a flight, honoring backpressure.
     */
    PulseFuture admitAfterMiss(const BlockFingerprint& fp,
                               const Circuit& block,
                               AdmitOutcome* outcome, bool force_block);

    /**
     * Block one Fixed segment, relabel to local qubits, fingerprint,
     * and append — the one blocking recipe every path (batch
     * precompute, serving plan) shares, so their addresses always
     * line up.
     */
    void appendFixedEntries(const Circuit& segment_circuit,
                            std::vector<ServingPlan::FixedEntry>& out)
        const;

    /** Blocked, relabeled, fingerprinted Fixed blocks of a template. */
    std::vector<ServingPlan::FixedEntry>
    collectFixedEntries(const Circuit& template_circuit) const;

    /** fingerprintBlock() stamped with the current epoch — the only
     * way this service mints fingerprints. */
    BlockFingerprint fingerprintStamped(const Circuit& block) const;

    /** Dedupe entries by fingerprint, fan out, wait, and report.
     * wallSeconds is measured from `start`. */
    BatchCompileReport
    compileEntries(const std::vector<ServingPlan::FixedEntry>& entries,
                   int circuits,
                   std::chrono::steady_clock::time_point start);

    CompileServiceOptions options_;
    PulseCache cache_;

    /** Guards epoch_ (read on every fingerprint mint, written only by
     * bumpEpoch/setEpoch). */
    mutable std::mutex epochMu_;
    CalibrationEpoch epoch_;

    std::mutex inflightMu_;
    std::unordered_map<BlockFingerprint, PulseFuture,
                       BlockFingerprintHash>
        inflight_;

    std::atomic<std::uint64_t> requests_{0};
    std::atomic<std::uint64_t> cacheHits_{0};
    std::atomic<std::uint64_t> coalesced_{0};
    std::atomic<std::uint64_t> synthRuns_{0};
    std::atomic<std::uint64_t> rejected_{0};
    std::atomic<std::uint64_t> quantHits_{0};
    std::atomic<std::uint64_t> quantMisses_{0};
    std::atomic<std::uint64_t> quantFallbacks_{0};
    std::atomic<std::uint64_t> exactServes_{0};
    std::atomic<std::uint64_t> quantRefineRounds_{0};
    std::atomic<std::uint64_t> quantSplits_{0};
    std::atomic<std::uint64_t> quantStaleReleased_{0};
    std::atomic<std::uint64_t> quantBytesReleased_{0};

    /** Whole serve() calls, from plan lookup to ServedPulse. */
    LatencyHistogram serveNs_;
    /** Whole prepareServing() calls (blocking + fingerprinting). */
    mutable LatencyHistogram prepareNs_;
    /** Individual synthesizer runs, measured on the worker. */
    LatencyHistogram synthNs_;

    /** Last member: destroyed first, so draining workers may still
     * touch the cache and the single-flight map above. */
    ThreadPool pool_;
};

} // namespace qpc

#endif // QPC_RUNTIME_SERVICE_H
