/**
 * @file
 * Regenerates Figure 7 and Section 8.4: compilation-latency reduction
 * of flexible partial compilation over full GRAPE, and the aggregate
 * impact across a 3500-iteration VQE run.
 *
 * Shape to reproduce: 10-100x latency reduction, largest for the
 * QAOA families (their single-parameter slices block into small,
 * cheap GRAPE problems) and smaller for the big molecules; and the
 * Section 8.4 argument that full-GRAPE latency across 3500 iterations
 * is measured in years while strict's pre-compute is about an hour.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "bench/benchcommon.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/table.h"
#include "partial/compiler.h"
#include "partial/strict.h"
#include "runtime/service.h"

using namespace qpc;
using namespace qpc::bench;

int
main()
{
    inform("Figure 7: compilation latency, flexible vs full GRAPE");

    // Paper Figure 7: seconds for full GRAPE / flexible partial.
    const struct
    {
        const char* name;
        double paperFull;
        double paperFlexible;
    } anchors[7] = {
        {"BeH2", 17163, 305},    {"NaH", 12387, 1057},
        {"H2O", 19065, 1261},    {"3reg-n6", 12786, 159},
        {"3reg-n8", 23718, 289}, {"erdos-n6", 11645, 263},
        {"erdos-n8", 19356, 1258},
    };

    TextTable table("Figure 7 — compilation latency (seconds)");
    table.addRow({"Benchmark", "Full GRAPE", "Flexible", "Reduction",
                  "Paper reduction"});

    auto emit = [&](const std::string& name, const Circuit& circuit,
                    int anchor_index) {
        PartialCompiler compiler(circuit);
        const std::vector<double> theta =
            nestedAngles(circuit.numParams(), 51);
        const CompileReport full =
            compiler.compile(Strategy::FullGrape, theta);
        const CompileReport flex =
            compiler.compile(Strategy::FlexiblePartial, theta);
        const double paper_ratio =
            anchors[anchor_index].paperFull /
            anchors[anchor_index].paperFlexible;
        table.addRow({name, fmtDouble(full.runtimeSeconds, 0),
                      fmtDouble(flex.runtimeSeconds, 1),
                      fmtRatio(full.runtimeSeconds /
                               flex.runtimeSeconds, 1),
                      fmtRatio(paper_ratio, 1)});
        return full;
    };

    CompileReport beh2_full;
    double beh2_strict_precompute = 0.0;
    {
        int index = 0;
        for (const char* name : {"BeH2", "NaH", "H2O"}) {
            const MoleculeSpec& spec = moleculeByName(name);
            const Circuit circuit = vqeBenchmarkCircuit(spec);
            const CompileReport full = emit(name, circuit, index);
            if (index == 0) {
                beh2_full = full;
                PartialCompiler compiler(circuit);
                beh2_strict_precompute =
                    compiler
                        .compile(Strategy::StrictPartial,
                                 nestedAngles(circuit.numParams(), 51))
                        .precomputeSeconds;
            }
            ++index;
        }
        const struct
        {
            const char* family;
            int n;
            uint64_t seed;
        } families[] = {{"3reg", 6, 11},
                        {"3reg", 8, 13},
                        {"erdos", 6, 12},
                        {"erdos", 8, 14}};
        for (const auto& fam : families) {
            const Graph graph =
                qaoaBenchmarkGraph(fam.family, fam.n, fam.seed);
            const Circuit circuit = qaoaBenchmarkCircuit(graph, 5);
            emit(qaoaBenchmarkName(fam.family, fam.n, 5), circuit,
                 index);
            ++index;
        }
    }
    table.print();

    // Section 8.4: aggregate impact over a 3500-iteration BeH2 run.
    const int iterations = 3500;
    TextTable agg("Section 8.4 — BeH2 across 3500 VQE iterations");
    agg.addRow({"Strategy", "Pre-compute", "Total runtime latency"});
    const Circuit circuit =
        vqeBenchmarkCircuit(moleculeByName("BeH2"));
    PartialCompiler compiler(circuit);
    const std::vector<double> theta =
        nestedAngles(circuit.numParams(), 51);
    for (Strategy s : allStrategies()) {
        const CompileReport r = compiler.compile(s, theta);
        const double total = r.runtimeSeconds * iterations;
        std::string total_str;
        if (total > 86400.0 * 365.0)
            total_str = fmtDouble(total / (86400.0 * 365.0), 1) +
                        " years";
        else if (total > 3600.0)
            total_str = fmtDouble(total / 3600.0, 1) + " hours";
        else
            total_str = fmtDouble(total, 1) + " s";
        agg.addRow({strategyName(s),
                    fmtDouble(r.precomputeSeconds / 3600.0, 2) +
                        " hours",
                    total_str});
    }
    agg.print();

    inform("full GRAPE's runtime latency across 3500 iterations is "
           "measured in years (paper: > 2 years); strict partial "
           "compilation needs only its one-off pre-compute (paper: "
           "under an hour of parallelized subcircuit jobs; ours is "
           "reported in sequential core-hours: ",
           fmtDouble(beh2_strict_precompute / 3600.0, 1), " h).");

    // The service path: the same strict pre-compute, but run through
    // the content-addressed compilation service — all seven benchmark
    // circuits batched, Fixed blocks deduplicated across them, and a
    // warm rerun served entirely from cache. Analytic synthesis keeps
    // the bench fast; the dedup/hit-rate numbers are what matter.
    {
        CompileServiceOptions options;
        options.numWorkers = 2;
        options.lookupDt = 0.5;
        options.synthesizer = analyticBlockSynthesizer(0.5);
        CompileService service(options);

        std::vector<Circuit> all;
        for (const char* name : {"BeH2", "NaH", "H2O"})
            all.push_back(vqeBenchmarkCircuit(moleculeByName(name)));
        const struct
        {
            const char* family;
            int n;
            uint64_t seed;
        } families[] = {{"3reg", 6, 11},
                        {"3reg", 8, 13},
                        {"erdos", 6, 12},
                        {"erdos", 8, 14}};
        for (const auto& fam : families)
            all.push_back(qaoaBenchmarkCircuit(
                qaoaBenchmarkGraph(fam.family, fam.n, fam.seed), 5));

        const BatchCompileReport cold = service.compileBatch(all);
        const BatchCompileReport warm = service.compileBatch(all);
        inform("compile service: ", cold.totalBlocks,
               " Fixed blocks across ", cold.circuits, " circuits, ",
               cold.uniqueBlocks, " unique (",
               fmtRatio(cold.totalBlocks /
                            std::max(1.0, double(cold.uniqueBlocks)),
                        2),
               " dedup), cold batch ",
               fmtDouble(cold.wallSeconds, 3), " s; warm rerun ",
               fmtDouble(100.0 * warm.hitRate(), 1), "% hit rate, ",
               warm.synthRuns, " fresh syntheses");
        std::printf("BENCH_fig7_service_unique_blocks=%d\n",
                    cold.uniqueBlocks);
        std::printf("BENCH_fig7_service_dedup_ratio=%.3f\n",
                    static_cast<double>(cold.totalBlocks) /
                        std::max(1, cold.uniqueBlocks));
        std::printf("BENCH_fig7_service_warm_hit_rate=%.4f\n",
                    warm.hitRate());
    }

    // Quantized parametric serving on the BeH2 iteration stream: the
    // flexible/exact path re-synthesizes every rotation binding, the
    // angle-quantized cache serves each from its grid bin. Report the
    // warm hit rate and the per-iteration serve-latency delta.
    {
        CompileServiceOptions options;
        options.numWorkers = 2;
        options.lookupDt = 0.5;
        options.synthesizer = analyticBlockSynthesizer(0.5);
        options.cache.capacity = 8192;
        options.quantization.enabled = true;
        options.quantization.bins = 256;
        CompileService server(options);

        const Circuit beh2 =
            vqeBenchmarkCircuit(moleculeByName("BeH2"));
        const StrictPartition partition = strictPartition(beh2);
        const ServingPlan quant = server.prepareServing(partition);
        const ServingPlan exact =
            server.prepareServing(partition, ParamQuantization{});
        server.precompilePlan(quant);
        server.prewarmQuantizedBins(quant);

        constexpr int kIterations = 30;
        uint64_t hits = 0, misses = 0, fallbacks = 0;
        Rng rng(42);
        const auto quant_start = std::chrono::steady_clock::now();
        for (int it = 0; it < kIterations; ++it) {
            const ServedPulse served =
                server.serve(quant, rng.angles(beh2.numParams()));
            hits += served.quantHits;
            misses += served.quantMisses;
            fallbacks += served.quantFallbacks;
        }
        const double quant_seconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - quant_start)
                .count();
        Rng exact_rng(42);
        const auto exact_start = std::chrono::steady_clock::now();
        for (int it = 0; it < kIterations; ++it)
            server.serve(exact, exact_rng.angles(beh2.numParams()));
        const double exact_seconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - exact_start)
                .count();

        const uint64_t lookups = hits + misses + fallbacks;
        const double hit_rate =
            lookups ? static_cast<double>(hits) / lookups : 0.0;
        inform("quantized BeH2 serving: ",
               fmtDouble(100.0 * hit_rate, 1), "% hit rate across ",
               kIterations, " iterations, ",
               fmtDouble(1e6 * quant_seconds / kIterations, 1),
               " us/iteration vs ",
               fmtDouble(1e6 * exact_seconds / kIterations, 1),
               " us exact");
        std::printf("BENCH_fig7_quant_hit_rate=%.4f\n", hit_rate);
        std::printf("BENCH_fig7_quant_iter_speedup=%.3f\n",
                    quant_seconds > 0.0 ? exact_seconds / quant_seconds
                                        : 0.0);
    }
    return 0;
}
