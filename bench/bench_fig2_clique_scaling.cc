/**
 * @file
 * Regenerates Figure 2: gate-based vs GRAPE pulse lengths for QAOA
 * MAXCUT on the 4-node clique, p = 1..6.
 *
 * The paper's headline shape: gate-based pulse time grows linearly in
 * p while the GRAPE time asymptotes to the characteristic time of a
 * 4-qubit unitary (below 50 ns), so the speedup ratio grows with p
 * (2.0x at p = 1 up to 12.0x at p = 6 in the paper). Parametrizations
 * are nested across p (same seed), so each added round perturbs
 * nothing that came before.
 */

#include "bench/benchcommon.h"
#include "common/logging.h"
#include "common/table.h"
#include "model/timemodel.h"
#include "transpile/durations.h"
#include "transpile/schedule.h"

using namespace qpc;
using namespace qpc::bench;

int
main()
{
    inform("Figure 2: MAXCUT on the 4-node clique, gate vs GRAPE");

    const Graph clique = cliqueGraph(4);
    const GateDurations durations = GateDurations::table1();
    const PulseTimeModel model;

    TextTable table("Figure 2 — pulse lengths on the 4-clique (ns)");
    table.addRow({"p", "Gate-based", "GRAPE (model)", "Ratio",
                  "Paper ratio"});
    const double paper_ratio[] = {2.0, 0, 0, 0, 0, 12.0};

    for (int p = 1; p <= 6; ++p) {
        Circuit circuit = buildQaoaCircuit(clique, p);
        optimizeCircuit(circuit);
        const std::vector<double> theta = nestedAngles(2 * p, 21);
        const Circuit bound = circuit.bind(theta);
        const double gate = criticalPathNs(bound, durations);
        const double grape = model.circuitTimeNs(bound, 4);
        fatalIf(grape > 50.0,
                "GRAPE asymptote exceeded the paper's 50 ns bound");
        std::string anchor = paper_ratio[p - 1] > 0
                                 ? fmtRatio(paper_ratio[p - 1], 1)
                                 : "-";
        table.addRow({std::to_string(p), fmtNs(gate), fmtNs(grape),
                      fmtRatio(gate / grape), anchor});
    }
    table.print();

    inform("gate-based grows linearly in p; the GRAPE estimate "
           "saturates at T_sat(4) = ",
           fmtNs(model.saturationNs(4)),
           " ns, reproducing the paper's asymptote (< 50 ns).");
    return 0;
}
