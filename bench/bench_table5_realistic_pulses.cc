/**
 * @file
 * Regenerates Table 5: GRAPE speedups under standard vs realistic
 * settings, using the *real* GRAPE optimizer end to end.
 *
 * Standard settings follow the paper's defaults (qubit-subspace
 * device, fine sampling, no regularization). Realistic settings add
 * the paper's three items: 1 GSa/s sampling (dt = 1 ns), qutrit
 * leakage (3-level device, anharmonic drift, subspace fidelity), and
 * pulse regularization (Gaussian envelope + slope penalties). The
 * claim to reproduce: speedups shrink somewhat under realism but
 * remain large (paper: 11.4x -> 8.8x for H2 VQE, 4.5x -> 3.0x for
 * Erdos-Renyi N = 3 QAOA).
 *
 * Workloads are the paper's: the H2 VQE circuit (2 qubits) and a
 * 3-node Erdos-Renyi QAOA circuit. Default sampling is coarsened for
 * bench runtime; --full uses the paper's 20 GSa/s standard rate.
 */

#include "bench/benchcommon.h"
#include "common/cli.h"
#include "common/logging.h"
#include "common/table.h"
#include "grape/mintime.h"
#include "sim/statevector.h"
#include "transpile/durations.h"
#include "transpile/schedule.h"
#include "vqe/hamiltonian.h"

using namespace qpc;
using namespace qpc::bench;

namespace {

/**
 * Gate durations under the realistic constraints: 1 GSa/s sampling
 * and aggressive Gaussian regularization stretch every library pulse
 * by roughly an order of magnitude (the paper's Table 5 reports
 * 35.3 -> 420 ns for the H2 circuit; our milder regularization
 * calibrates to a 4x stretch so the realistic gate baseline and the
 * realistic GRAPE difficulty stay mutually consistent).
 */
GateDurations
realisticDurations()
{
    const double stretch = 4.0;
    GateDurations d = GateDurations::table1();
    d.rz = std::max(1.0, d.rz * stretch);
    d.rx = std::max(1.0, d.rx * stretch);
    d.h = std::max(1.0, d.h * stretch);
    d.cx = std::max(1.0, d.cx * stretch);
    d.swap = std::max(1.0, d.swap * stretch);
    return d;
}

struct Workload
{
    std::string name;
    Circuit bound;
};

} // namespace

int
main(int argc, char** argv)
{
    CliParser cli("bench_table5_realistic_pulses");
    cli.addDouble("dt", 0.25, "standard-mode sample period (ns)");
    cli.addInt("iters", 250, "GRAPE iteration cap per probe");
    cli.addDouble("fidelity", 0.99, "GRAPE convergence target");
    cli.addFlag("full", "paper-exact 0.05 ns standard sampling");
    cli.parse(argc, argv);
    const double std_dt = cli.getFlag("full") ? 0.05
                                              : cli.getDouble("dt");

    inform("Table 5: standard vs realistic GRAPE settings "
           "(real optimizer; this bench runs GRAPE many times and "
           "takes a minute or two)");

    // Workloads: H2 VQE and Erdos-Renyi N=3 (triangle-free seed).
    std::vector<Workload> workloads;
    {
        const MoleculeSpec h2 = moleculeByName("H2");
        Circuit ansatz = buildUccsdAnsatz(h2);
        optimizeCircuit(ansatz);
        workloads.push_back(
            {"H2 VQE", ansatz.bind(nestedAngles(h2.numParams, 61))});
    }
    {
        Rng rng(62);
        const Graph graph = erdosRenyi(3, 0.5, rng);
        Circuit circuit = buildQaoaCircuit(graph, 1);
        optimizeCircuit(circuit);
        workloads.push_back(
            {"Erdos-Renyi N=3", circuit.bind(nestedAngles(2, 63))});
    }

    // Paper anchors: {std gate, std grape, real gate, real grape}.
    const double paper[2][4] = {{35.3, 3.1, 420.0, 48.0},
                                {15.0, 3.3, 285.0, 96.0}};

    TextTable table("Table 5 — standard vs realistic settings");
    table.addRow({"Benchmark", "Mode", "Gate (ns)", "GRAPE (ns)",
                  "Speedup", "Paper"});

    for (size_t w = 0; w < workloads.size(); ++w) {
        const Workload& load = workloads[w];
        const CMatrix target = circuitUnitary(load.bound);
        const int width = load.bound.numQubits();

        for (int realistic = 0; realistic < 2; ++realistic) {
            const GateDurations durations =
                realistic ? realisticDurations()
                          : GateDurations::table1();
            const double gate_ns =
                criticalPathNs(load.bound, durations);

            MinTimeOptions options;
            options.grape.maxIterations =
                width >= 3 ? 2 * cli.getInt("iters")
                           : cli.getInt("iters");
            options.grape.hyper = AdamHyperParams{0.1, 0.999};
            options.upperBoundNs = std::max(gate_ns, 60.0);
            if (realistic) {
                // The leaky-qutrit landscape is far harder; accept a
                // slightly relaxed target within a bounded budget
                // (documented in EXPERIMENTS.md).
                options.grape.dt = 1.0;
                options.grape.maxIterations =
                    2 * options.grape.maxIterations;
                options.grape.targetFidelity =
                    width >= 3 ? 0.97 : 0.98;
                // Wider leaky devices need gentler regularization
                // and a hotter optimizer to escape leakage plateaus.
                options.grape.slopeWeight = width >= 3 ? 5e-4 : 1e-3;
                options.grape.envelopeWeight =
                    width >= 3 ? 0.0 : 1e-3;
                options.grape.amplitudeWeight = 1e-4;
                if (width >= 3)
                    options.grape.hyper = AdamHyperParams{0.15, 0.9995};
                options.lowerBoundNs = width >= 3 ? 30.0 : 12.0;
                options.upperBoundNs =
                    std::max(options.upperBoundNs, 120.0);
            } else {
                options.grape.dt = std_dt;
                options.grape.targetFidelity =
                    cli.getDouble("fidelity");
                options.lowerBoundNs = width >= 3 ? 3.0 : 1.0;
            }

            // Ascending scan: on the leaky qutrit device convergence
            // is not monotone in duration (long pulses accumulate
            // leakage), so binary search from above is unreliable.
            // Realistic wide devices derate the flux drive: with 1 ns
            // samples a rail-to-rail 9.4 rad/ns flux winds many turns
            // per sample, an unoptimizable landscape no regularized
            // experiment would use.
            GmonLimits limits;
            if (realistic && width >= 3)
                limits.fluxMax *= 0.2;
            std::vector<std::pair<int, int>> pairs;
            for (int q = 0; q + 1 < width; ++q)
                pairs.emplace_back(q, q + 1);
            const DeviceModel device(width, pairs, realistic ? 3 : 2,
                                     limits);
            const MinTimeResult result =
                grapeMinimalTimeScan(device, target, options, 1.6);

            const std::string anchor =
                fmtNs(paper[w][realistic ? 2 : 0], 0) + " -> " +
                fmtNs(paper[w][realistic ? 3 : 1], 0) + " (" +
                fmtRatio(paper[w][realistic ? 2 : 0] /
                         paper[w][realistic ? 3 : 1], 1) +
                ")";
            if (result.found) {
                table.addRow({load.name,
                              realistic ? "realistic" : "standard",
                              fmtNs(gate_ns), fmtNs(result.minTimeNs),
                              fmtRatio(gate_ns / result.minTimeNs, 1),
                              anchor});
            } else {
                warn(load.name, " (", realistic ? "realistic"
                                                : "standard",
                     "): no convergence within budget; best fidelity ",
                     fmtDouble(result.best.fidelity, 3));
                table.addRow({load.name,
                              realistic ? "realistic" : "standard",
                              fmtNs(gate_ns), "> budget", "n/a",
                              anchor});
            }
        }
    }
    table.print();

    inform("speedups shrink under realistic constraints but remain "
           "well above 1x, matching the paper's conclusion.");
    return 0;
}
