/**
 * @file
 * Compilation-service scaling: wall-clock precompute speedup vs.
 * worker count, cross-circuit block deduplication, and warm-cache hit
 * rate on the QAOA benchmark sweep.
 *
 * The paper pre-compiled Fixed blocks on a parallel cluster
 * (Section 8.4 reports strict partial's pre-compute as "about an
 * hour" of parallelized subcircuit jobs vs. years of serial full
 * GRAPE). This bench measures the service half of that story: the
 * batch API dedupes the sweep's shared blocks, the worker pool
 * overlaps the per-block synthesis latency, and a warm rerun is pure
 * cache lookup. Pulse synthesis is paced by the calibrated GRAPE
 * latency model (scaled so the whole bench runs in seconds), so what
 * is measured is the service's scheduling, deduplication, and cache
 * behaviour at a realistic latency *shape* rather than the container's
 * core count.
 *
 * Machine-readable lines (picked up by bench/run_all.sh JSON):
 *   BENCH_service_total_blocks / _unique_blocks / _dedup_ratio
 *   BENCH_service_wall_seconds_1w / _4w / BENCH_service_speedup_4w
 *   BENCH_service_warm_wall_seconds / _warm_hit_rate
 */

#include <cstdio>
#include <unordered_map>
#include <vector>

#include "bench/benchcommon.h"
#include "cache/fingerprint.h"
#include "common/logging.h"
#include "common/table.h"
#include "model/latencymodel.h"
#include "model/timemodel.h"
#include "runtime/service.h"

using namespace qpc;
using namespace qpc::bench;

namespace {

/** The QAOA benchmark sweep: both families, both sizes, p = 1..5. */
std::vector<Circuit>
qaoaSweep()
{
    const struct
    {
        const char* family;
        int n;
        uint64_t seed;
    } families[] = {{"3reg", 6, 11},
                    {"3reg", 8, 13},
                    {"erdos", 6, 12},
                    {"erdos", 8, 14}};
    std::vector<Circuit> sweep;
    for (const auto& fam : families) {
        const Graph graph =
            qaoaBenchmarkGraph(fam.family, fam.n, fam.seed);
        for (int p = 1; p <= 5; ++p)
            sweep.push_back(qaoaBenchmarkCircuit(graph, p));
    }
    return sweep;
}

CompileServiceOptions
serviceOptions(int workers, double time_scale)
{
    CompileServiceOptions options;
    options.numWorkers = workers;
    // Coarse sample period: the bench measures scheduling, not pulse
    // resolution, and the modeled sleep dominates synthesis anyway.
    options.lookupDt = 0.5;
    options.synthesizer = modeledLatencySynthesizer(time_scale, 0.5);
    return options;
}

} // namespace

int
main()
{
    inform("compilation service scaling on the QAOA benchmark sweep");
    const std::vector<Circuit> sweep = qaoaSweep();

    // Calibrate the latency scale so the serial (1-worker) pass costs
    // roughly kTargetSerialSeconds: sum the modeled full-GRAPE latency
    // over the *unique* blocks of the sweep.
    const GrapeLatencyModel latency;
    const PulseTimeModel time_model;
    double modeled_serial_seconds = 0.0;
    int total_blocks = 0;
    int unique_blocks = 0;
    {
        CompileService scout(serviceOptions(1, 0.0));
        std::unordered_map<BlockFingerprint, double,
                           BlockFingerprintHash>
            unique;
        for (const Circuit& circuit : sweep) {
            for (const Circuit& block : scout.fixedBlocksOf(circuit)) {
                ++total_blocks;
                unique.emplace(
                    fingerprintBlock(block),
                    latency.fullGrapeSeconds(
                        block.numQubits(),
                        time_model.blockTimeNs(block)));
            }
        }
        unique_blocks = static_cast<int>(unique.size());
        for (const auto& [fp, seconds] : unique)
            modeled_serial_seconds += seconds;
    }
    const double kTargetSerialSeconds = 2.0;
    const double time_scale =
        modeled_serial_seconds > 0.0
            ? kTargetSerialSeconds / modeled_serial_seconds
            : 0.0;
    inform("sweep: ", sweep.size(), " circuits, ", total_blocks,
           " Fixed blocks, ", unique_blocks,
           " unique after cross-circuit dedup; modeled serial "
           "pre-compute ",
           fmtDouble(modeled_serial_seconds / 3600.0, 1),
           " core-hours, paced down by ", time_scale);

    // Cold batch at 1 worker vs. 4 workers (fresh service, fresh
    // cache each), then a warm rerun on the 4-worker service.
    CompileService serial(serviceOptions(1, time_scale));
    const BatchCompileReport cold1 = serial.compileBatch(sweep);

    CompileService parallel(serviceOptions(4, time_scale));
    const BatchCompileReport cold4 = parallel.compileBatch(sweep);
    const BatchCompileReport warm = parallel.compileBatch(sweep);

    const double speedup =
        cold4.wallSeconds > 0.0 ? cold1.wallSeconds / cold4.wallSeconds
                                : 0.0;

    TextTable table("compile-service precompute, QAOA sweep");
    table.addRow({"Configuration", "Wall (s)", "Synth runs",
                  "Cache hit rate"});
    table.addRow({"cold, 1 worker", fmtDouble(cold1.wallSeconds, 2),
                  std::to_string(cold1.synthRuns),
                  fmtDouble(100.0 * cold1.hitRate(), 1) + "%"});
    table.addRow({"cold, 4 workers", fmtDouble(cold4.wallSeconds, 2),
                  std::to_string(cold4.synthRuns),
                  fmtDouble(100.0 * cold4.hitRate(), 1) + "%"});
    table.addRow({"warm rerun, 4 workers",
                  fmtDouble(warm.wallSeconds, 2),
                  std::to_string(warm.synthRuns),
                  fmtDouble(100.0 * warm.hitRate(), 1) + "%"});
    table.print();

    inform("4-worker speedup over serial: ", fmtRatio(speedup, 2),
           "; warm rerun needs ", warm.synthRuns,
           " fresh syntheses at ",
           fmtDouble(100.0 * warm.hitRate(), 1), "% hit rate");

    std::printf("BENCH_service_total_blocks=%d\n", total_blocks);
    std::printf("BENCH_service_unique_blocks=%d\n", unique_blocks);
    std::printf("BENCH_service_dedup_ratio=%.3f\n",
                unique_blocks > 0
                    ? static_cast<double>(total_blocks) / unique_blocks
                    : 0.0);
    std::printf("BENCH_service_wall_seconds_1w=%.3f\n",
                cold1.wallSeconds);
    std::printf("BENCH_service_wall_seconds_4w=%.3f\n",
                cold4.wallSeconds);
    std::printf("BENCH_service_speedup_4w=%.3f\n", speedup);
    std::printf("BENCH_service_warm_wall_seconds=%.3f\n",
                warm.wallSeconds);
    std::printf("BENCH_service_warm_hit_rate=%.4f\n", warm.hitRate());

    fatalIf(warm.synthRuns != 0,
            "warm rerun re-synthesized blocks: cache is broken");
    return 0;
}
