/**
 * @file
 * Compilation-service scaling: wall-clock precompute speedup vs.
 * worker count, cross-circuit block deduplication, and warm-cache hit
 * rate on the QAOA benchmark sweep.
 *
 * The paper pre-compiled Fixed blocks on a parallel cluster
 * (Section 8.4 reports strict partial's pre-compute as "about an
 * hour" of parallelized subcircuit jobs vs. years of serial full
 * GRAPE). This bench measures the service half of that story: the
 * batch API dedupes the sweep's shared blocks, the worker pool
 * overlaps the per-block synthesis latency, and a warm rerun is pure
 * cache lookup. Pulse synthesis is paced by the calibrated GRAPE
 * latency model (scaled so the whole bench runs in seconds), so what
 * is measured is the service's scheduling, deduplication, and cache
 * behaviour at a realistic latency *shape* rather than the container's
 * core count.
 *
 * Machine-readable lines (picked up by bench/run_all.sh JSON):
 *   BENCH_service_total_blocks / _unique_blocks / _dedup_ratio
 *   BENCH_service_wall_seconds_1w / _4w / BENCH_service_speedup_4w
 *   BENCH_service_warm_wall_seconds / _warm_hit_rate
 *   BENCH_service_quant_hit_rate / _quant_fallbacks
 *   BENCH_service_quant_serve_us / _exact_serve_us / _quant_speedup
 *   BENCH_adaptive_error_bound / _fixed_error_bound / _synth_runs /
 *     _fixed_synth_runs / _hit_rate / _splits / _refine_rounds
 *   BENCH_service_backpressure_max_queued / _peak_queue /
 *     _wall_seconds / _rejected / _reject_rate
 *   BENCH_cache_bytes_capacity / _in_use / _evicted / _entries /
 *     _warm_hit_rate
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench/benchcommon.h"
#include "cache/fingerprint.h"
#include "cache/quantize.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/table.h"
#include "model/latencymodel.h"
#include "model/timemodel.h"
#include "partial/strict.h"
#include "runtime/service.h"
#include "vqe/hamiltonian.h"
#include "vqe/molecule.h"
#include "vqe/uccsd.h"
#include "vqe/vqedriver.h"

using namespace qpc;
using namespace qpc::bench;

namespace {

/** The QAOA benchmark sweep: both families, both sizes, p = 1..5. */
std::vector<Circuit>
qaoaSweep()
{
    const struct
    {
        const char* family;
        int n;
        uint64_t seed;
    } families[] = {{"3reg", 6, 11},
                    {"3reg", 8, 13},
                    {"erdos", 6, 12},
                    {"erdos", 8, 14}};
    std::vector<Circuit> sweep;
    for (const auto& fam : families) {
        const Graph graph =
            qaoaBenchmarkGraph(fam.family, fam.n, fam.seed);
        for (int p = 1; p <= 5; ++p)
            sweep.push_back(qaoaBenchmarkCircuit(graph, p));
    }
    return sweep;
}

CompileServiceOptions
serviceOptions(int workers, double time_scale)
{
    CompileServiceOptions options;
    options.numWorkers = workers;
    // Coarse sample period: the bench measures scheduling, not pulse
    // resolution, and the modeled sleep dominates synthesis anyway.
    options.lookupDt = 0.5;
    options.synthesizer = modeledLatencySynthesizer(time_scale, 0.5);
    return options;
}

} // namespace

int
main()
{
    inform("compilation service scaling on the QAOA benchmark sweep");
    const std::vector<Circuit> sweep = qaoaSweep();

    // Calibrate the latency scale so the serial (1-worker) pass costs
    // roughly kTargetSerialSeconds: sum the modeled full-GRAPE latency
    // over the *unique* blocks of the sweep.
    const GrapeLatencyModel latency;
    const PulseTimeModel time_model;
    double modeled_serial_seconds = 0.0;
    int total_blocks = 0;
    int unique_blocks = 0;
    {
        CompileService scout(serviceOptions(1, 0.0));
        std::unordered_map<BlockFingerprint, double,
                           BlockFingerprintHash>
            unique;
        for (const Circuit& circuit : sweep) {
            for (const Circuit& block : scout.fixedBlocksOf(circuit)) {
                ++total_blocks;
                unique.emplace(
                    fingerprintBlock(block),
                    latency.fullGrapeSeconds(
                        block.numQubits(),
                        time_model.blockTimeNs(block)));
            }
        }
        unique_blocks = static_cast<int>(unique.size());
        for (const auto& [fp, seconds] : unique)
            modeled_serial_seconds += seconds;
    }
    const double kTargetSerialSeconds = 2.0;
    const double time_scale =
        modeled_serial_seconds > 0.0
            ? kTargetSerialSeconds / modeled_serial_seconds
            : 0.0;
    inform("sweep: ", sweep.size(), " circuits, ", total_blocks,
           " Fixed blocks, ", unique_blocks,
           " unique after cross-circuit dedup; modeled serial "
           "pre-compute ",
           fmtDouble(modeled_serial_seconds / 3600.0, 1),
           " core-hours, paced down by ", time_scale);

    // Cold batch at 1 worker vs. 4 workers (fresh service, fresh
    // cache each), then a warm rerun on the 4-worker service.
    CompileService serial(serviceOptions(1, time_scale));
    const BatchCompileReport cold1 = serial.compileBatch(sweep);

    CompileService parallel(serviceOptions(4, time_scale));
    const BatchCompileReport cold4 = parallel.compileBatch(sweep);
    const BatchCompileReport warm = parallel.compileBatch(sweep);

    const double speedup =
        cold4.wallSeconds > 0.0 ? cold1.wallSeconds / cold4.wallSeconds
                                : 0.0;

    TextTable table("compile-service precompute, QAOA sweep");
    table.addRow({"Configuration", "Wall (s)", "Synth runs",
                  "Cache hit rate"});
    table.addRow({"cold, 1 worker", fmtDouble(cold1.wallSeconds, 2),
                  std::to_string(cold1.synthRuns),
                  fmtDouble(100.0 * cold1.hitRate(), 1) + "%"});
    table.addRow({"cold, 4 workers", fmtDouble(cold4.wallSeconds, 2),
                  std::to_string(cold4.synthRuns),
                  fmtDouble(100.0 * cold4.hitRate(), 1) + "%"});
    table.addRow({"warm rerun, 4 workers",
                  fmtDouble(warm.wallSeconds, 2),
                  std::to_string(warm.synthRuns),
                  fmtDouble(100.0 * warm.hitRate(), 1) + "%"});
    table.print();

    inform("4-worker speedup over serial: ", fmtRatio(speedup, 2),
           "; warm rerun needs ", warm.synthRuns,
           " fresh syntheses at ",
           fmtDouble(100.0 * warm.hitRate(), 1), "% hit rate");

    std::printf("BENCH_service_total_blocks=%d\n", total_blocks);
    std::printf("BENCH_service_unique_blocks=%d\n", unique_blocks);
    std::printf("BENCH_service_dedup_ratio=%.3f\n",
                unique_blocks > 0
                    ? static_cast<double>(total_blocks) / unique_blocks
                    : 0.0);
    std::printf("BENCH_service_wall_seconds_1w=%.3f\n",
                cold1.wallSeconds);
    std::printf("BENCH_service_wall_seconds_4w=%.3f\n",
                cold4.wallSeconds);
    std::printf("BENCH_service_speedup_4w=%.3f\n", speedup);
    std::printf("BENCH_service_warm_wall_seconds=%.3f\n",
                warm.wallSeconds);
    std::printf("BENCH_service_warm_hit_rate=%.4f\n", warm.hitRate());

    fatalIf(warm.synthRuns != 0,
            "warm rerun re-synthesized blocks: cache is broken");

    // Quantized parametric serving: the per-iteration hot path. Exact
    // flexible recompilation synthesizes every rotation binding from
    // scratch; the angle-quantized cache snaps each binding onto a
    // fidelity-bounded grid and serves the bin from cache. Measure
    // both over the same random binding stream on the full QAOA sweep
    // (analytic synthesis — this section times the serve path itself,
    // not the modeled GRAPE latency).
    {
        constexpr int kBins = 256;
        constexpr int kIterations = 50;

        CompileServiceOptions options;
        options.numWorkers = 4;
        options.lookupDt = 0.5;
        options.synthesizer = analyticBlockSynthesizer(0.5);
        // Keep the whole grid plus every Fixed block resident: one
        // axis per rotation kind at 1 qubit, so kBins x 3 worst case.
        options.cache.capacity = 8192;
        options.quantization.enabled = true;
        options.quantization.bins = kBins;
        CompileService server(options);

        std::vector<ServingPlan> quantPlans;
        std::vector<ServingPlan> exactPlans;
        ParamQuantization off;
        for (const Circuit& circuit : sweep) {
            const StrictPartition partition = strictPartition(circuit);
            quantPlans.push_back(server.prepareServing(partition));
            exactPlans.push_back(
                server.prepareServing(partition, off));
            server.precompilePlan(quantPlans.back());
        }
        // Pre-warm every plan's axes; repeats collapse to cache hits,
        // so the grid is synthesized once per (axis, bin) sweep-wide.
        const auto prewarm_start = std::chrono::steady_clock::now();
        BatchCompileReport grid;
        for (const ServingPlan& plan : quantPlans) {
            const BatchCompileReport report =
                server.prewarmQuantizedBins(plan);
            grid.uniqueBlocks += report.uniqueBlocks;
            grid.synthRuns += report.synthRuns;
        }
        const double prewarm_seconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - prewarm_start)
                .count();

        uint64_t quant_hits = 0, quant_misses = 0, quant_fallbacks = 0;
        uint64_t serves = 0;
        Rng rng(7);
        const auto quant_start = std::chrono::steady_clock::now();
        for (int it = 0; it < kIterations; ++it)
            for (size_t i = 0; i < sweep.size(); ++i) {
                const ServedPulse served = server.serve(
                    quantPlans[i],
                    rng.angles(sweep[i].numParams()));
                quant_hits += served.quantHits;
                quant_misses += served.quantMisses;
                quant_fallbacks += served.quantFallbacks;
                ++serves;
            }
        const double quant_seconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - quant_start)
                .count();

        Rng exact_rng(7);
        const auto exact_start = std::chrono::steady_clock::now();
        for (int it = 0; it < kIterations; ++it)
            for (size_t i = 0; i < sweep.size(); ++i)
                server.serve(exactPlans[i],
                             exact_rng.angles(sweep[i].numParams()));
        const double exact_seconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - exact_start)
                .count();

        const uint64_t quant_lookups =
            quant_hits + quant_misses + quant_fallbacks;
        const double hit_rate =
            quant_lookups
                ? static_cast<double>(quant_hits) / quant_lookups
                : 0.0;
        const double quant_us = 1e6 * quant_seconds / serves;
        const double exact_us = 1e6 * exact_seconds / serves;
        inform("quantized serving (", kBins, " bins, grid prewarm ",
               grid.synthRuns, " pulses in ",
               fmtDouble(prewarm_seconds, 3), " s): ",
               fmtDouble(100.0 * hit_rate, 1), "% hit rate over ",
               serves, " iterations, ", quant_fallbacks,
               " fallbacks; ", fmtDouble(quant_us, 1),
               " us/iteration vs ", fmtDouble(exact_us, 1),
               " us exact (", fmtRatio(exact_us / quant_us, 2), ")");

        std::printf("BENCH_service_quant_hit_rate=%.4f\n", hit_rate);
        std::printf("BENCH_service_quant_fallbacks=%llu\n",
                    static_cast<unsigned long long>(quant_fallbacks));
        std::printf("BENCH_service_quant_serve_us=%.2f\n", quant_us);
        std::printf("BENCH_service_exact_serve_us=%.2f\n", exact_us);
        std::printf("BENCH_service_quant_speedup=%.3f\n",
                    quant_us > 0.0 ? exact_us / quant_us : 0.0);

        fatalIf(hit_rate < 0.9,
                "quantized warm hit rate fell below 90% on the QAOA "
                "sweep");
    }

    // Adaptive quantization grids on a converging H2 VQE run: the
    // fixed grid spends its resolution uniformly over the whole
    // circle, so matching the accuracy a converging optimizer needs
    // near its optimum means paying fine bins *everywhere it
    // wandered*. The adaptive grid starts coarse and splits only the
    // bins the optimizer actually visits (triggered by its shrinking
    // step norms), so it reaches a *lower* realized error bound at
    // the optimum on *fewer* total syntheses. Both runs simulate the
    // snapped angles their pulses realize.
    {
        const Circuit ansatz =
            buildOptimizedUccsd(moleculeByName("H2"));
        const PauliHamiltonian hamiltonian = h2Hamiltonian();
        constexpr int kFixedBins = 1024;
        constexpr int kAdaptiveBins = 64;
        constexpr int kVqeIterations = 400;

        CompileServiceOptions service_options;
        service_options.numWorkers = 4;
        service_options.lookupDt = 0.5;
        service_options.synthesizer = analyticBlockSynthesizer(0.5);
        service_options.cache.capacity = 8192;

        auto vqeWith = [&](const ParamQuantization& quantization,
                           CompileService& service) {
            VqeRunOptions options;
            options.optimizer.maxIterations = kVqeIterations;
            // Run the converged tail out instead of stopping at the
            // default f-spread: the thousands-of-iterations regime
            // near the optimum is precisely what the paper's
            // amortization (and this comparison) is about.
            options.optimizer.fTolerance = 1e-13;
            options.compileService = &service;
            options.quantization = quantization;
            return runVqe(ansatz, hamiltonian, options);
        };

        ParamQuantization fixed_grid;
        fixed_grid.enabled = true;
        fixed_grid.bins = kFixedBins;
        fixed_grid.fidelityBudget = 0.05;
        CompileService fixed_service(service_options);
        const VqeResult fixed = vqeWith(fixed_grid, fixed_service);
        // No prewarm on either side: every synthesis is demand-driven
        // (first touches of a bin, plus refinement child prewarms on
        // the adaptive side), which is what the comparison meters.
        const uint64_t fixed_synths = fixed.quantMisses;

        ParamQuantization adaptive_grid = fixed_grid;
        adaptive_grid.bins = kAdaptiveBins;
        adaptive_grid.adaptive = true;
        adaptive_grid.maxRefineDepth = 5; // Finest step: 2pi/2048.
        adaptive_grid.splitVisitThreshold = 6;
        adaptive_grid.refineCooldown = 1;
        adaptive_grid.refineStepNorm = 0.25;
        CompileService adaptive_service(service_options);
        const VqeResult adaptive =
            vqeWith(adaptive_grid, adaptive_service);
        const uint64_t adaptive_synths =
            adaptive.quantMisses + adaptive.quantRefineSynths;

        const uint64_t adaptive_serves = adaptive.quantHits +
                                         adaptive.quantMisses +
                                         adaptive.quantFallbacks;
        const double adaptive_hit_rate =
            adaptive_serves ? static_cast<double>(adaptive.quantHits) /
                                  adaptive_serves
                            : 0.0;

        TextTable table("adaptive vs fixed grid, converging H2 VQE");
        table.addRow({"Grid", "Bins", "Syntheses",
                      "Error bound @ optimum", "Energy gap"});
        table.addRow({"fixed", std::to_string(kFixedBins),
                      std::to_string(fixed_synths),
                      fmtDouble(fixed.finalQuantErrorBound, 6),
                      fmtDouble(std::abs(fixed.energy -
                                         fixed.exactGroundEnergy),
                                6)});
        table.addRow(
            {"adaptive",
             std::to_string(kAdaptiveBins) + "+" +
                 std::to_string(adaptive.quantSplits) + " splits",
             std::to_string(adaptive_synths),
             fmtDouble(adaptive.finalQuantErrorBound, 6),
             fmtDouble(std::abs(adaptive.energy -
                                adaptive.exactGroundEnergy),
                       6)});
        table.print();
        inform("adaptive: ", adaptive.quantRefineRounds,
               " refinement rounds split ", adaptive.quantSplits,
               " leaves (", adaptive.quantRefineSynths,
               " child prewarms, ", adaptive.quantBytesReleased,
               " stale bytes released), ",
               fmtDouble(100.0 * adaptive_hit_rate, 1),
               "% warm hit rate over ", adaptive_serves,
               " rotation serves");

        std::printf("BENCH_adaptive_error_bound=%.6f\n",
                    adaptive.finalQuantErrorBound);
        std::printf("BENCH_adaptive_fixed_error_bound=%.6f\n",
                    fixed.finalQuantErrorBound);
        std::printf("BENCH_adaptive_synth_runs=%llu\n",
                    static_cast<unsigned long long>(adaptive_synths));
        std::printf("BENCH_adaptive_fixed_synth_runs=%llu\n",
                    static_cast<unsigned long long>(fixed_synths));
        std::printf("BENCH_adaptive_hit_rate=%.4f\n",
                    adaptive_hit_rate);
        std::printf("BENCH_adaptive_splits=%llu\n",
                    static_cast<unsigned long long>(
                        adaptive.quantSplits));
        std::printf("BENCH_adaptive_refine_rounds=%d\n",
                    adaptive.quantRefineRounds);

        // The tentpole claim, enforced: strictly lower realized error
        // at the optimum for equal or fewer total syntheses, served
        // overwhelmingly warm.
        fatalIf(adaptive.finalQuantErrorBound >=
                    fixed.finalQuantErrorBound,
                "adaptive grid's realized error bound did not beat "
                "the fixed grid's");
        fatalIf(adaptive_synths > fixed_synths,
                "adaptive grid needed more syntheses than the fixed "
                "grid");
        fatalIf(adaptive_hit_rate < 0.9,
                "adaptive warm hit rate fell below 90% on the "
                "converging H2 VQE run");
    }

    // Backpressure: 8 drivers race the whole sweep through one
    // bounded service. The queue must never exceed maxQueuedJobs
    // (admissions block instead of ballooning memory), and the work
    // still completes. A second, Reject-policy service measures how
    // much load an impatient caller sheds at the same bound.
    {
        constexpr std::size_t kMaxQueued = 8;
        constexpr int kDrivers = 8;

        CompileServiceOptions options = serviceOptions(2, time_scale);
        options.maxQueuedJobs = kMaxQueued;
        CompileService bounded(options);

        const auto bp_start = std::chrono::steady_clock::now();
        std::vector<std::thread> drivers;
        drivers.reserve(kDrivers);
        for (int d = 0; d < kDrivers; ++d)
            drivers.emplace_back(
                [&bounded, &sweep] { bounded.compileBatch(sweep); });
        for (std::thread& d : drivers)
            d.join();
        const double bp_seconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - bp_start)
                .count();
        const std::size_t peak = bounded.peakQueueDepth();

        CompileServiceOptions shed_options = serviceOptions(2, 0.0);
        shed_options.synthesizer =
            modeledLatencySynthesizer(time_scale, 0.5);
        shed_options.maxQueuedJobs = kMaxQueued;
        shed_options.queueFullPolicy = QueueFullPolicy::Reject;
        CompileService shedding(shed_options);
        std::atomic<uint64_t> rejected{0};
        std::atomic<uint64_t> attempts{0};
        std::vector<std::thread> impatient;
        impatient.reserve(kDrivers);
        for (int d = 0; d < kDrivers; ++d)
            impatient.emplace_back([&shedding, &sweep, &rejected,
                                    &attempts] {
                std::vector<CompileService::PulseFuture> pending;
                for (const Circuit& circuit : sweep)
                    for (const Circuit& block :
                         shedding.fixedBlocksOf(circuit)) {
                        AdmitOutcome outcome = AdmitOutcome::CacheHit;
                        auto future =
                            shedding.requestBlock(block, &outcome);
                        attempts.fetch_add(1);
                        if (outcome == AdmitOutcome::Rejected)
                            rejected.fetch_add(1);
                        else
                            pending.push_back(std::move(future));
                    }
                for (auto& future : pending)
                    future.get();
            });
        for (std::thread& d : impatient)
            d.join();
        const double reject_rate =
            attempts.load()
                ? static_cast<double>(rejected.load()) / attempts.load()
                : 0.0;

        inform("backpressure: ", kDrivers, " drivers, queue bound ",
               kMaxQueued, ", peak depth ", peak, ", batch storm in ",
               fmtDouble(bp_seconds, 2), " s; reject policy shed ",
               rejected.load(), "/", attempts.load(), " admissions (",
               fmtDouble(100.0 * reject_rate, 1), "%)");

        std::printf("BENCH_service_backpressure_max_queued=%zu\n",
                    kMaxQueued);
        std::printf("BENCH_service_backpressure_peak_queue=%zu\n",
                    peak);
        std::printf("BENCH_service_backpressure_wall_seconds=%.3f\n",
                    bp_seconds);
        std::printf("BENCH_service_backpressure_rejected=%llu\n",
                    static_cast<unsigned long long>(rejected.load()));
        std::printf("BENCH_service_backpressure_reject_rate=%.4f\n",
                    reject_rate);

        fatalIf(peak > kMaxQueued,
                "pool queue exceeded maxQueuedJobs: backpressure is "
                "broken");
        fatalIf(shedding.peakQueueDepth() > kMaxQueued,
                "reject-policy queue exceeded maxQueuedJobs");
    }

    // Byte-budgeted caching: rerun the sweep against a cache whose
    // byte budget holds only a fraction of the unique pulses. The
    // bound must hold exactly (bytesInUse <= capacityBytes, enforced
    // by eviction), and the warm hit rate degrades gracefully instead
    // of the cache growing without limit.
    {
        // Measure the sweep's total unique-pulse footprint first.
        CompileServiceOptions unbounded_options;
        unbounded_options.numWorkers = 4;
        unbounded_options.lookupDt = 0.5;
        unbounded_options.synthesizer = analyticBlockSynthesizer(0.5);
        CompileService unbounded(unbounded_options);
        unbounded.compileBatch(sweep);
        const std::size_t full_bytes =
            unbounded.cacheStats().bytesInUse;

        CompileServiceOptions options = unbounded_options;
        options.cache.capacityBytes = std::max<std::size_t>(
            1024, full_bytes / 3);
        // Few shards: pulses here average ~full_bytes/33 each, so a
        // finely sharded budget would leave per-shard slices smaller
        // than single pulses (refused as oversized) and under-fill
        // the cap.
        options.cache.shards = 2;
        CompileService budgeted(options);
        budgeted.compileBatch(sweep);
        const BatchCompileReport warm_budgeted =
            budgeted.compileBatch(sweep);
        const CacheStats cache_stats = budgeted.cacheStats();

        inform("byte budget: full sweep needs ", full_bytes,
               " B; capped at ", options.cache.capacityBytes, " B -> ",
               cache_stats.entries, " resident entries (",
               cache_stats.bytesInUse, " B), ",
               cache_stats.bytesEvicted, " B evicted, warm hit rate ",
               fmtDouble(100.0 * warm_budgeted.hitRate(), 1), "%");

        std::printf("BENCH_cache_bytes_capacity=%zu\n",
                    options.cache.capacityBytes);
        std::printf("BENCH_cache_bytes_in_use=%zu\n",
                    cache_stats.bytesInUse);
        std::printf("BENCH_cache_bytes_evicted=%llu\n",
                    static_cast<unsigned long long>(
                        cache_stats.bytesEvicted));
        std::printf("BENCH_cache_bytes_entries=%zu\n",
                    cache_stats.entries);
        std::printf("BENCH_cache_bytes_warm_hit_rate=%.4f\n",
                    warm_budgeted.hitRate());

        fatalIf(cache_stats.bytesInUse > options.cache.capacityBytes,
                "cache bytesInUse exceeded capacityBytes: the byte "
                "budget is not a hard bound");
    }
    return 0;
}
