/**
 * @file
 * Regenerates Figure 6 and the QAOA half of Table 4: pulse durations
 * for the four QAOA benchmark families across p = 1..8 under all four
 * compilation strategies.
 *
 * Shape to reproduce: gate-based grows linearly in p; strict achieves
 * only a modest speedup (QAOA's parametrized gates are too frequent
 * for deep Fixed blocks); flexible nearly matches full GRAPE at every
 * depth.
 */

#include <chrono>
#include <cstdio>

#include "bench/benchcommon.h"
#include "common/cli.h"
#include "common/logging.h"
#include "common/table.h"
#include "partial/compiler.h"

using namespace qpc;
using namespace qpc::bench;

int
main(int argc, char** argv)
{
    CliParser cli("bench_fig6_table4_qaoa_speedups");
    cli.addInt("pmax", 8, "largest QAOA depth to sweep");
    cli.parse(argc, argv);
    const int pmax = cli.getInt("pmax");

    inform("Figure 6 / Table 4 (QAOA): pulse durations by strategy");

    // Paper Table 4 anchors (ns) at p=1 and p=5:
    // family -> {gate, strict, flexible, grape} x {p1, p5}.
    const double paper[4][2][4] = {
        {{113.2, 91.2, 72.0, 72.0}, {433.6, 397.6, 206.2, 179.0}},
        {{83.7, 54.0, 26.4, 26.6}, {367.8, 291.8, 150.0, 141.2}},
        {{162.5, 134.0, 112.0, 112.0}, {860.0, 711.6, 498.9, 498.9}},
        {{157.1, 100.0, 80.5, 81.6}, {749.5, 551.7, 434.8, 513.7}},
    };
    const struct
    {
        const char* family;
        int n;
        uint64_t seed;
    } families[] = {
        {"3reg", 6, 11}, {"erdos", 6, 12}, {"3reg", 8, 13},
        {"erdos", 8, 14}};

    // Wall clock over the full sweep, as in bench_fig5: the key that
    // tracks the end-to-end effect of numeric-kernel changes.
    const auto sweep_start = std::chrono::steady_clock::now();
    for (int f = 0; f < 4; ++f) {
        const Graph graph = qaoaBenchmarkGraph(
            families[f].family, families[f].n, families[f].seed);
        TextTable table(std::string("Figure 6 — ") +
                        qaoaBenchmarkName(families[f].family,
                                          families[f].n, 0) +
                        " pulse durations (ns)");
        table.addRow({"p", "Gate", "Strict", "Flexible", "GRAPE",
                      "Paper g/s/f/G"});
        for (int p = 1; p <= pmax; ++p) {
            const Circuit circuit = qaoaBenchmarkCircuit(graph, p);
            PartialCompiler compiler(circuit);
            const std::vector<double> theta = nestedAngles(2 * p, 41);
            const std::vector<CompileReport> reports =
                compiler.compileAll(theta);
            fatalIf(reports[1].pulseNs > reports[0].pulseNs + 1e-6,
                    "strict exceeded gate-based at p=", p);
            std::string anchor = "-";
            if (p == 1 || p == 5) {
                const int a = (p == 1) ? 0 : 1;
                anchor = fmtNs(paper[f][a][0], 0) + "/" +
                         fmtNs(paper[f][a][1], 0) + "/" +
                         fmtNs(paper[f][a][2], 0) + "/" +
                         fmtNs(paper[f][a][3], 0);
            }
            table.addRow({std::to_string(p),
                          fmtNs(reports[0].pulseNs),
                          fmtNs(reports[1].pulseNs),
                          fmtNs(reports[2].pulseNs),
                          fmtNs(reports[3].pulseNs), anchor});
        }
        table.print();
    }
    std::printf("BENCH_fig6_compile_wall_s=%.2f\n",
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - sweep_start)
                    .count());

    inform("strict stays close to gate-based (QAOA's parametrized "
           "gates are too frequent), while flexible tracks full "
           "GRAPE — the paper's Figure 6 separation.");
    return 0;
}
