/**
 * @file
 * Regenerates Table 1: the gate library and its pulse durations.
 *
 * Columns: the paper's reported duration, the analytic time model's
 * Hamiltonian-derived optimal-control estimate, and the duration of
 * the exact (but unoptimized, one-axis-at-a-time) pulse from the
 * analytic gate library. The model column should track the paper; the
 * library column shows the slack GRAPE-style overlap removes. Each
 * library pulse is verified by time evolution before printing.
 */

#include <cmath>

#include "common/logging.h"
#include "common/table.h"
#include "ir/gate.h"
#include "linalg/su2.h"
#include "model/timemodel.h"
#include "pulse/evolve.h"
#include "pulse/library.h"

using namespace qpc;

namespace {

const double kPi = 3.14159265358979323846;

} // namespace

int
main()
{
    inform("Table 1: compiler gate set and pulse durations (ns)");

    PulseTimeModel model;
    DeviceModel dev1 = DeviceModel::gmonLine(1);
    DeviceModel dev2 = DeviceModel::gmonLine(2);
    GatePulseLibrary lib1(dev1, 0.01);
    GatePulseLibrary lib2(dev2, 0.01);

    struct Row
    {
        std::string name;
        double paperNs;
        double modelNs;
        PulseSchedule libraryPulse;
        CMatrix target;
        const DeviceModel* device;
    };

    std::vector<Row> rows;
    rows.push_back({"Rz(pi)", 0.4,
                    model.singleQubitTimeNs(rzMatrix(kPi)),
                    lib1.rz(0, kPi), rzMatrix(kPi), &dev1});
    rows.push_back({"Rx(pi)", 2.5,
                    model.singleQubitTimeNs(rxMatrix(kPi)),
                    lib1.rx(0, kPi), rxMatrix(kPi), &dev1});
    rows.push_back({"H", 1.4, model.singleQubitTimeNs(hMatrix()),
                    lib1.h(0), hMatrix(), &dev1});
    rows.push_back({"CX", 3.8,
                    model.twoQubitTimeNs(gateMatrix(GateKind::CX)),
                    lib2.cx(0, 1), gateMatrix(GateKind::CX), &dev2});
    rows.push_back({"SWAP", 7.4,
                    model.twoQubitTimeNs(gateMatrix(GateKind::SWAP)),
                    lib2.swapGate(0, 1), gateMatrix(GateKind::SWAP),
                    &dev2});

    TextTable table("Table 1 — gate pulse durations (ns)");
    table.addRow({"Gate", "Paper", "Model (optimal)",
                  "Analytic library", "Library fidelity"});
    for (const Row& row : rows) {
        const CMatrix realized =
            evolveUnitary(*row.device, row.libraryPulse);
        const double fid = traceFidelity(row.target, realized);
        fatalIf(fid < 0.999, "library pulse for ", row.name,
                " failed verification (fidelity ", fid, ")");
        table.addRow({row.name, fmtNs(row.paperNs),
                      fmtNs(row.modelNs, 2),
                      fmtNs(row.libraryPulse.durationNs(), 2),
                      fmtDouble(fid, 5)});
    }
    table.print();

    inform("model times are GRAPE-style (overlapped drives); the "
           "analytic library realizes gates one axis at a time and "
           "is verified by simulation before printing.");
    return 0;
}
