/**
 * @file
 * Regenerates Figure 4: GRAPE error vs ADAM learning rate is robust
 * to the bound value of a slice's angle.
 *
 * Runs the *real* GRAPE optimizer (not the analytic model) on a
 * single-angle UCCSD slice at several bindings of its theta, sweeping
 * the learning rate. The claim to reproduce: the learning rate that
 * minimizes error is (nearly) the same for every binding, which is
 * what lets flexible partial compilation pre-tune hyperparameters
 * once per slice. Configured small (2-qubit slice, coarse dt) so the
 * sweep finishes in seconds; --full sharpens it.
 */

#include <cmath>

#include "common/cli.h"
#include "common/logging.h"
#include "common/table.h"
#include "grape/grape.h"
#include "partial/flexible.h"
#include "sim/statevector.h"
#include "vqe/uccsd.h"

using namespace qpc;

int
main(int argc, char** argv)
{
    CliParser cli("bench_fig4_hyperparam_robustness");
    cli.addInt("iters", 80, "ADAM iterations per trial");
    cli.addDouble("dt", 0.2, "sample period in ns");
    cli.addDouble("time", 4.0, "pulse duration in ns");
    cli.addFlag("full", "use fine sampling and more iterations");
    cli.parse(argc, argv);

    const bool full = cli.getFlag("full");
    const double dt = full ? 0.05 : cli.getDouble("dt");
    const int iters = full ? 300 : cli.getInt("iters");

    inform("Figure 4: GRAPE error vs learning rate across angle "
           "bindings (real GRAPE)");

    // A single-angle slice: the H2 UCCSD single-excitation term on
    // two qubits — the 0th slice shape of every UCCSD circuit.
    const MoleculeSpec h2 = moleculeByName("H2");
    const Circuit ansatz = buildUccsdAnsatz(h2);
    const FlexiblePartition slices = flexibleSlices(ansatz);
    const Circuit& slice = slices.slices.front().circuit;

    const DeviceModel device = DeviceModel::gmonLine(2);
    const double lrs[] = {0.003, 0.01, 0.03, 0.1, 0.3};
    const double bindings[] = {0.3, 1.1, 2.2};

    TextTable table(
        "Figure 4 — GRAPE error (1 - fidelity) by learning rate");
    std::vector<std::string> header{"Learning rate"};
    for (double b : bindings)
        header.push_back("theta=" + fmtDouble(b, 1));
    table.addRow(header);

    std::vector<int> best_lr_index(3, -1);
    std::vector<double> best_err(3, 1e9);
    for (size_t li = 0; li < std::size(lrs); ++li) {
        std::vector<std::string> row{fmtDouble(lrs[li], 3)};
        for (size_t bi = 0; bi < std::size(bindings); ++bi) {
            std::vector<double> theta(
                static_cast<size_t>(ansatz.numParams()), bindings[bi]);
            const CMatrix target =
                circuitUnitary(slice.bind(theta));
            GrapeOptions options;
            options.dt = dt;
            options.maxIterations = iters;
            options.targetFidelity = 2.0;   // never early-stop
            options.hyper = AdamHyperParams{lrs[li], 0.999};
            const GrapeResult run = runGrapeFixedTime(
                device, target, cli.getDouble("time"), options);
            const double err = 1.0 - run.fidelity;
            if (err < best_err[bi]) {
                best_err[bi] = err;
                best_lr_index[bi] = static_cast<int>(li);
            }
            row.push_back(fmtDouble(err, 5));
        }
        table.addRow(row);
    }
    table.print();

    const bool robust = best_lr_index[0] >= 0 &&
                        std::abs(best_lr_index[0] - best_lr_index[1]) <= 1 &&
                        std::abs(best_lr_index[1] - best_lr_index[2]) <= 1;
    inform("best learning rate is ", robust ? "" : "NOT ",
           "stable across angle bindings — ",
           robust ? "reproducing" : "contradicting",
           " the paper's robustness observation.");
    return 0;
}
