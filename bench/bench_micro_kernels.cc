/**
 * @file
 * Google-benchmark microbenchmarks of the numeric substrate.
 *
 * Not a paper table — these document the per-kernel costs that the
 * latency model abstracts (matrix multiply, propagator, eigensolve,
 * one full GRAPE gradient iteration, state-vector gate application,
 * Weyl coordinates), so the secondsPerUnit calibration in
 * src/model/latencymodel.h can be checked against this machine.
 */

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "grape/grape.h"
#include "linalg/eig.h"
#include "linalg/expm.h"
#include "linalg/random_unitary.h"
#include "linalg/su2.h"
#include "linalg/weyl.h"
#include "pulse/evolve.h"
#include "sim/statevector.h"

using namespace qpc;

namespace {

void
BM_MatrixMultiply16(benchmark::State& state)
{
    Rng rng(1);
    const CMatrix a = haarUnitary(16, rng);
    const CMatrix b = haarUnitary(16, rng);
    for (auto _ : state) {
        CMatrix c = a * b;
        benchmark::DoNotOptimize(c.data());
    }
}
BENCHMARK(BM_MatrixMultiply16);

void
BM_SlicePropagator16(benchmark::State& state)
{
    const DeviceModel device = DeviceModel::gmonLine(4);
    std::vector<double> amps(device.numControls(), 0.1);
    const CMatrix h = sliceHamiltonian(device, amps);
    for (auto _ : state) {
        CMatrix u = slicePropagator(h, 0.05);
        benchmark::DoNotOptimize(u.data());
    }
}
BENCHMARK(BM_SlicePropagator16);

void
BM_EigHermitian16(benchmark::State& state)
{
    const DeviceModel device = DeviceModel::gmonLine(4);
    std::vector<double> amps(device.numControls(), 0.1);
    const CMatrix h = sliceHamiltonian(device, amps);
    for (auto _ : state) {
        EigResult eig = eigHermitian(h);
        benchmark::DoNotOptimize(eig.values.data());
    }
}
BENCHMARK(BM_EigHermitian16);

void
BM_WeylCoordinates(benchmark::State& state)
{
    Rng rng(2);
    const CMatrix u = haarUnitary(4, rng);
    for (auto _ : state) {
        WeylCoords c = weylCoordinates(u);
        benchmark::DoNotOptimize(c.c1);
    }
}
BENCHMARK(BM_WeylCoordinates);

void
BM_StateVectorGate10q(benchmark::State& state)
{
    StateVector sv(10);
    const CMatrix h = hMatrix();
    int q = 0;
    for (auto _ : state) {
        sv.applyMatrix1(h, q);
        q = (q + 1) % 10;
        benchmark::DoNotOptimize(sv.amplitudes().data());
    }
}
BENCHMARK(BM_StateVectorGate10q);

void
BM_GrapeIteration2q(benchmark::State& state)
{
    const DeviceModel device = DeviceModel::gmonLine(2);
    const CMatrix target = gateMatrix(GateKind::CX);
    GrapeOptions options;
    options.dt = 0.1;
    for (auto _ : state) {
        // One-iteration run = one full gradient evaluation + step.
        GrapeOptions single = options;
        single.maxIterations = 1;
        GrapeResult r =
            runGrapeFixedTime(device, target, 5.0, single);
        benchmark::DoNotOptimize(r.fidelity);
    }
}
BENCHMARK(BM_GrapeIteration2q);

} // namespace

BENCHMARK_MAIN();
