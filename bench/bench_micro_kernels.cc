/**
 * @file
 * Microbenchmarks of the numeric substrate, in two halves:
 *
 *  1. The SoA kernels layer (src/linalg/kernels.h): every dispatching
 *     kernel timed against its bit-compatible `...Scalar` reference.
 *     On a QPC_NATIVE=ON build the dispatch side runs the AVX2 paths
 *     and the speedup keys report the vector gain; on a scalar build
 *     both sides run the same code and the speedups sit at ~1.0.
 *
 *  2. The composite substrate costs the latency model abstracts
 *     (matrix multiply, propagator, eigensolve, a full GRAPE gradient
 *     iteration), so the secondsPerUnit calibration in
 *     src/model/latencymodel.h can be checked against this machine.
 *
 * Machine-readable output, one line per measurement:
 *   BENCH_micro_backend=avx2|scalar
 *   BENCH_micro_<kernel>_scalar_ns / BENCH_micro_<kernel>_simd_ns
 *   BENCH_micro_<kernel>_speedup   (scalar_ns / simd_ns)
 *   BENCH_micro_substrate_<name>_ns
 * bench/compare.sh gates the speedup keys: a drop past 5% of the
 * baseline (or a vanished key) fails the compare.
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "common/table.h"
#include "grape/grape.h"
#include "linalg/eig.h"
#include "linalg/kernels.h"
#include "linalg/random_unitary.h"
#include "linalg/su2.h"
#include "pulse/evolve.h"
#include "sim/statevector.h"

using namespace qpc;

namespace {

/** Keep `p`'s pointee alive and opaque to the optimizer. */
inline void
clobber(const void* p)
{
    asm volatile("" : : "g"(p) : "memory");
}

/**
 * Best-of-rounds ns/op: calibrate a repetition count that runs ~10ms,
 * then take the fastest of several rounds (min is far more stable
 * than mean on a shared machine).
 */
template <typename F>
double
nsPerOp(F&& body)
{
    using clock = std::chrono::steady_clock;
    constexpr double kTargetNs = 1e7;
    constexpr int kRounds = 5;

    body(); // warm caches and the backend dispatch
    std::int64_t reps = 1;
    for (;;) {
        const auto t0 = clock::now();
        for (std::int64_t i = 0; i < reps; ++i)
            body();
        const double ns = std::chrono::duration<double, std::nano>(
                              clock::now() - t0)
                              .count();
        if (ns >= kTargetNs / 4.0 || reps >= (1LL << 30)) {
            // Scale to the target, then measure for real.
            reps = std::max<std::int64_t>(
                1, static_cast<std::int64_t>(reps * kTargetNs /
                                             std::max(ns, 1.0)));
            break;
        }
        reps *= 4;
    }
    double best = 0.0;
    for (int round = 0; round < kRounds; ++round) {
        const auto t0 = clock::now();
        for (std::int64_t i = 0; i < reps; ++i)
            body();
        const double ns = std::chrono::duration<double, std::nano>(
                              clock::now() - t0)
                              .count() /
                          static_cast<double>(reps);
        if (round == 0 || ns < best)
            best = ns;
    }
    return best;
}

struct KernelRow
{
    const char* name;
    double scalarNs;
    double simdNs;
};

std::vector<KernelRow>
benchKernels()
{
    Rng rng(7);
    std::vector<KernelRow> rows;
    auto add = [&](const char* name, double scalar_ns,
                   double simd_ns) {
        rows.push_back({name, scalar_ns, simd_ns});
    };

    // --- gemm, 64x64 planar ---------------------------------------
    {
        const int n = 64;
        kernels::SoaMatrix a(n, n), b(n, n), c(n, n);
        a.pack(haarUnitary(n, rng));
        b.pack(haarUnitary(n, rng));
        add("gemm64",
            nsPerOp([&] {
                kernels::gemmScalar(c, a, b);
                clobber(c.re());
            }),
            nsPerOp([&] {
                kernels::gemm(c, a, b);
                clobber(c.re());
            }));

        // What the production swap actually bought: the pre-SoA AoS
        // multiply loop (still the small-matrix path) against the full
        // pack + planar gemm + unpack route `multiplyInto` now takes.
        const CMatrix am = haarUnitary(n, rng);
        const CMatrix bm = haarUnitary(n, rng);
        CMatrix cm(n, n);
        add("gemm64_aos",
            nsPerOp([&] {
                kernels::gemmAosReference(cm, am, bm);
                clobber(cm.data());
            }),
            nsPerOp([&] {
                kernels::gemmInto(cm, am, bm);
                clobber(cm.data());
            }));
    }

    // --- gemv, 256x256 --------------------------------------------
    {
        const int n = 256;
        kernels::SoaMatrix a(n, n);
        a.pack(haarUnitary(n, rng));
        // 32-byte-aligned planar operands, as the production call
        // sites hold (SoaMatrix scratch). std::vector<double> is only
        // 16-byte aligned, and the resulting split 32-byte load every
        // other cache line taxes the vector side alone.
        kernels::SoaMatrix xv(1, n), yv(1, n);
        double* xre = xv.re();
        double* xim = xv.im();
        double* yre = yv.re();
        double* yim = yv.im();
        for (int i = 0; i < n; ++i) {
            xre[i] = rng.uniform(-1.0, 1.0);
            xim[i] = rng.uniform(-1.0, 1.0);
        }
        add("gemv256",
            nsPerOp([&] {
                kernels::gemvScalar(yre, yim, a, xre, xim);
                clobber(yre);
            }),
            nsPerOp([&] {
                kernels::gemv(yre, yim, a, xre, xim);
                clobber(yre);
            }));
    }

    // --- axpy / dotc / dotu over 1024 planar elements (L1-resident:
    // the GRAPE overlap and statevector inner products live at these
    // sizes, and L2 bandwidth would otherwise cap both sides) -------
    {
        const std::size_t n = 1024;
        // Aligned planar buffers, same rationale as the gemv block.
        kernels::SoaMatrix xv(1, static_cast<int>(n));
        kernels::SoaMatrix yv(1, static_cast<int>(n));
        double* xre = xv.re();
        double* xim = xv.im();
        double* yre = yv.re();
        double* yim = yv.im();
        for (std::size_t i = 0; i < n; ++i) {
            xre[i] = rng.uniform(-1.0, 1.0);
            xim[i] = rng.uniform(-1.0, 1.0);
            yre[i] = rng.uniform(-1.0, 1.0);
            yim[i] = rng.uniform(-1.0, 1.0);
        }
        const Complex alpha{0.6, -0.8};
        add("axpy1024",
            nsPerOp([&] {
                kernels::axpyScalar(alpha, xre, xim, yre, yim, n);
                clobber(yre);
            }),
            nsPerOp([&] {
                kernels::axpy(alpha, xre, xim, yre, yim, n);
                clobber(yre);
            }));
        add("dotc1024",
            nsPerOp([&] {
                const Complex d =
                    kernels::dotcScalar(xre, xim, yre, yim, n);
                clobber(&d);
            }),
            nsPerOp([&] {
                const Complex d = kernels::dotc(xre, xim, yre, yim, n);
                clobber(&d);
            }));
        add("dotu1024",
            nsPerOp([&] {
                const Complex d =
                    kernels::dotuScalar(xre, xim, yre, yim, n);
                clobber(&d);
            }),
            nsPerOp([&] {
                const Complex d = kernels::dotu(xre, xim, yre, yim, n);
                clobber(&d);
            }));

        // What the production swap actually bought at the GRAPE
        // overlap and statevector inner-product call sites: the
        // pre-kernels code walked interleaved std::complex arrays
        // accumulating into a single Complex — one dependent FP-add
        // chain, so it runs at add-latency per element no matter how
        // wide the machine is. The kernels layer keeps planar buffers
        // and reduces through eight independent stripes. The
        // `dotc1024` pair above isolates pure vectorization against
        // the already stripe-tuned scalar mirror; this pair is the
        // end-to-end ratio for the layout + reduction-shape swap.
        std::vector<Complex> xa(n), ya(n);
        for (std::size_t i = 0; i < n; ++i) {
            xa[i] = Complex{xre[i], xim[i]};
            ya[i] = Complex{yre[i], yim[i]};
        }
        add("dotc1024_aos",
            nsPerOp([&] {
                Complex acc{0.0, 0.0};
                for (std::size_t i = 0; i < n; ++i)
                    acc += std::conj(xa[i]) * ya[i];
                clobber(&acc);
            }),
            nsPerOp([&] {
                const Complex d = kernels::dotc(xre, xim, yre, yim, n);
                clobber(&d);
            }));
        add("dotu1024_aos",
            nsPerOp([&] {
                Complex acc{0.0, 0.0};
                for (std::size_t i = 0; i < n; ++i)
                    acc += xa[i] * ya[i];
                clobber(&acc);
            }),
            nsPerOp([&] {
                const Complex d = kernels::dotu(xre, xim, yre, yim, n);
                clobber(&d);
            }));
    }

    // --- scaleColumns, 64x64 --------------------------------------
    {
        const int n = 64;
        kernels::SoaMatrix m(n, n);
        m.pack(haarUnitary(n, rng));
        std::vector<Complex> factors(n);
        for (int i = 0; i < n; ++i)
            factors[i] = std::polar(1.0, rng.uniform(-3.0, 3.0));
        add("scalecols64",
            nsPerOp([&] {
                kernels::scaleColumnsScalar(m, factors.data());
                clobber(m.re());
            }),
            nsPerOp([&] {
                kernels::scaleColumns(m, factors.data());
                clobber(m.re());
            }));
    }

    // --- statevector gates, 10 qubits -----------------------------
    {
        const std::size_t dim = 1 << 10;
        std::vector<Complex> amps = randomState(dim, rng);
        CMatrix u1 = haarUnitary(2, rng);
        const Complex uflat1[4] = {u1(0, 0), u1(0, 1), u1(1, 0),
                                   u1(1, 1)};
        const std::size_t stride = 1 << 5; // vector-path stride
        add("gate1_10q",
            nsPerOp([&] {
                kernels::applyGate1Scalar(amps.data(), dim, stride,
                                          uflat1);
                clobber(amps.data());
            }),
            nsPerOp([&] {
                kernels::applyGate1(amps.data(), dim, stride, uflat1);
                clobber(amps.data());
            }));

        CMatrix u2 = haarUnitary(4, rng);
        Complex uflat2[16];
        for (int r = 0; r < 4; ++r)
            for (int c = 0; c < 4; ++c)
                uflat2[4 * r + c] = u2(r, c);
        add("gate2_10q",
            nsPerOp([&] {
                kernels::applyGate2Scalar(amps.data(), dim, 1 << 7,
                                          1 << 4, uflat2);
                clobber(amps.data());
            }),
            nsPerOp([&] {
                kernels::applyGate2(amps.data(), dim, 1 << 7, 1 << 4,
                                    uflat2);
                clobber(amps.data());
            }));

        // Against the pre-kernels statevector loop (the AoS
        // std::complex arithmetic applyMatrix1 executed before this
        // layer; the property tests keep the same loop as oracle).
        add("gate1_10q_aos",
            nsPerOp([&] {
                for (std::size_t base = 0; base < dim; ++base) {
                    if (base & stride)
                        continue;
                    const Complex a0 = amps[base];
                    const Complex a1 = amps[base | stride];
                    amps[base] = u1(0, 0) * a0 + u1(0, 1) * a1;
                    amps[base | stride] = u1(1, 0) * a0 + u1(1, 1) * a1;
                }
                clobber(amps.data());
            }),
            nsPerOp([&] {
                kernels::applyGate1(amps.data(), dim, stride, uflat1);
                clobber(amps.data());
            }));

        const std::vector<Complex> other = randomState(dim, rng);
        add("dotc_ilv1024",
            nsPerOp([&] {
                const Complex d = kernels::dotcInterleavedScalar(
                    amps.data(), other.data(), dim);
                clobber(&d);
            }),
            nsPerOp([&] {
                const Complex d = kernels::dotcInterleaved(
                    amps.data(), other.data(), dim);
                clobber(&d);
            }));
    }

    return rows;
}

/** The composite costs the latency model calibrates against. */
void
benchSubstrate()
{
    Rng rng(1);
    const DeviceModel device = DeviceModel::gmonLine(4);
    std::vector<double> amps(device.numControls(), 0.1);
    const CMatrix h = sliceHamiltonian(device, amps);
    const CMatrix a = haarUnitary(16, rng);
    const CMatrix b = haarUnitary(16, rng);
    const DeviceModel device2q = DeviceModel::gmonLine(2);
    const CMatrix target = gateMatrix(GateKind::CX);

    const struct
    {
        const char* name;
        double ns;
    } rows[] = {
        {"matmul16", nsPerOp([&] {
             CMatrix c = a * b;
             clobber(c.data());
         })},
        {"propagator16", nsPerOp([&] {
             CMatrix u = slicePropagator(h, 0.05);
             clobber(u.data());
         })},
        {"eig16", nsPerOp([&] {
             EigResult eig = eigHermitian(h);
             clobber(eig.values.data());
         })},
        {"grape_iter2q", nsPerOp([&] {
             GrapeOptions single;
             single.dt = 0.1;
             single.maxIterations = 1;
             GrapeResult r =
                 runGrapeFixedTime(device2q, target, 5.0, single);
             clobber(&r.fidelity);
         })},
    };

    TextTable table("Substrate composites (latency-model anchors)");
    table.addRow({"composite", "ns/op"});
    for (const auto& row : rows)
        table.addRow({row.name, std::to_string(row.ns)});
    table.print();
    for (const auto& row : rows)
        std::printf("BENCH_micro_substrate_%s_ns=%.1f\n", row.name,
                    row.ns);
}

} // namespace

int
main()
{
    inform("micro kernels: SoA dispatch vs scalar reference (backend ",
           kernels::backendName(), ")");

    const std::vector<KernelRow> rows = benchKernels();

    TextTable table("SoA kernels — dispatch vs scalar reference");
    table.addRow({"kernel", "scalar ns", "dispatch ns", "speedup"});
    for (const KernelRow& row : rows) {
        char speedup[32];
        std::snprintf(speedup, sizeof speedup, "%.2fx",
                      row.scalarNs / row.simdNs);
        table.addRow({row.name, std::to_string(row.scalarNs),
                      std::to_string(row.simdNs), speedup});
    }
    table.print();

    std::printf("BENCH_micro_backend=%s\n", kernels::backendName());
    for (const KernelRow& row : rows) {
        std::printf("BENCH_micro_%s_scalar_ns=%.1f\n", row.name,
                    row.scalarNs);
        std::printf("BENCH_micro_%s_simd_ns=%.1f\n", row.name,
                    row.simdNs);
        std::printf("BENCH_micro_%s_speedup=%.3f\n", row.name,
                    row.scalarNs / row.simdNs);
    }

    benchSubstrate();
    return 0;
}
