/**
 * @file
 * Regenerates Table 2: the VQE-UCCSD benchmark circuits.
 *
 * For each of the five molecules: circuit width, number of UCCSD
 * parameters, and the gate-based runtime (ASAP critical path of the
 * optimized, nearest-neighbour-mapped circuit at Table 1 durations).
 * Absolute runtimes differ from the paper because our from-scratch
 * UCCSD synthesis replaces Qiskit + PySCF (DESIGN.md substitution 2),
 * but widths and parameter counts match exactly and runtimes scale
 * the same way with molecule size.
 */

#include "bench/benchcommon.h"
#include "common/logging.h"
#include "common/table.h"
#include "transpile/durations.h"
#include "transpile/schedule.h"

using namespace qpc;
using namespace qpc::bench;

int
main()
{
    inform("Table 2: VQE-UCCSD benchmark circuits");

    // Paper's gate-based runtimes (ns), Table 2.
    const double paper_ns[] = {35.0, 872.0, 5308.0, 5490.0, 33842.0};

    TextTable table("Table 2 — VQE-UCCSD benchmarks");
    table.addRow({"Molecule", "Width", "# Params", "Gate ops",
                  "Gate-based (ns)", "Paper (ns)"});

    const GateDurations durations = GateDurations::table1();
    int index = 0;
    for (const MoleculeSpec& spec : vqeBenchmarks()) {
        const Circuit circuit = vqeBenchmarkCircuit(spec);
        fatalIf(circuit.numParams() != spec.numParams,
                spec.name, ": parameter count drifted");
        const double runtime = criticalPathNs(circuit, durations);
        table.addRow({spec.name, std::to_string(spec.numQubits),
                      std::to_string(spec.numParams),
                      std::to_string(circuit.size()), fmtNs(runtime),
                      fmtNs(paper_ns[index])});
        ++index;
    }
    table.print();
    return 0;
}
