#!/usr/bin/env bash
# Diff a fresh bench results directory against a baseline (default:
# the checked-in seed snapshot), so each PR can read its BENCH_ perf
# trajectory at a glance.
#
# Usage:
#   bench/compare.sh <fresh-results-dir> [baseline-dir]
#
# Defaults: baseline "bench/results/seed" relative to the repo root.
# Reports, per bench: elapsed-seconds delta vs. baseline, exit-status
# changes, benches new to this run, and benches missing from it. Also
# diffs any BENCH_<key>=<value> lines embedded in the bench output.
# Requires jq.
set -u

FRESH=${1:?usage: bench/compare.sh <fresh-results-dir> [baseline-dir]}
BASE=${2:-"$(dirname "$0")/results/seed"}

if ! command -v jq >/dev/null; then
    echo "compare.sh: jq is required" >&2
    exit 1
fi
for dir in "$FRESH" "$BASE"; do
    if [ ! -d "$dir" ]; then
        echo "compare.sh: no such directory: $dir" >&2
        exit 1
    fi
done

status=0
printf '%-36s %12s %12s %9s\n' "bench" "base (s)" "fresh (s)" "delta"

shopt -s nullglob
for fresh_json in "$FRESH"/bench_*.json; do
    bench=$(basename "$fresh_json" .json)
    [ "$bench" = "summary" ] && continue
    base_json="$BASE/$bench.json"
    fresh_elapsed=$(jq -r '.elapsed_seconds' "$fresh_json")
    fresh_status=$(jq -r '.exit_status' "$fresh_json")
    if [ ! -f "$base_json" ]; then
        printf '%-36s %12s %12s %9s\n' "$bench" "-" "$fresh_elapsed" "NEW"
        continue
    fi
    base_elapsed=$(jq -r '.elapsed_seconds' "$base_json")
    base_status=$(jq -r '.exit_status' "$base_json")
    delta=$(awk -v b="$base_elapsed" -v f="$fresh_elapsed" \
        'BEGIN { if (b > 0) printf "%+.1f%%", 100 * (f - b) / b;
                 else printf "n/a" }')
    printf '%-36s %12s %12s %9s\n' \
        "$bench" "$base_elapsed" "$fresh_elapsed" "$delta"
    if [ "$fresh_status" != "$base_status" ]; then
        echo "   !! exit status changed: $base_status -> $fresh_status"
        status=1
    fi
    # Diff machine-readable BENCH_key=value lines, if either side has
    # them (new keys, changed values, and removed keys all show).
    # BENCH_adaptive_* keys carry a quality direction: error bound and
    # synthesis count must not grow, hit rate must not fall — a fresh
    # value past 5% tolerance on the wrong side is flagged as a
    # regression and fails the compare. BENCH_server_* gates the
    # compile-server daemon the same way: serve p99 latency may not
    # grow past 1.5x (it is wall-clock, so it gets the widest band)
    # and cross-tenant dedup may not fall below 0.95x of baseline.
    # BENCH_micro_*_speedup gates the SoA kernels layer: the
    # dispatch-vs-scalar speedup ratio may not fall below 0.95x of
    # baseline (ratios of same-binary timings are stable where raw
    # ns/op are not), and a vanished micro key means a kernel was
    # silently dropped from the bench.
    # (Explicit section markers rather than NR==FNR: that idiom
    # misattributes the second stream when the first is empty.)
    bench_diff=$(awk -F= '
        $0 == "__SECTION__" { section++; next }
        section == 1 { base[$1] = $2; next }
        { fresh[$1] = 1
          if (!($1 in base))
              printf "   BENCH %s: (new) -> %s\n", $1, $2
          else if (base[$1] != $2) {
              printf "   BENCH %s: %s -> %s\n", $1, base[$1], $2
              if ($1 ~ /^BENCH_adaptive_(error_bound|synth_runs)$/ &&
                  $2 + 0 > (base[$1] + 0) * 1.05)
                  printf "   !! ADAPTIVE REGRESSION %s: %s -> %s\n", \
                      $1, base[$1], $2
              if ($1 == "BENCH_adaptive_hit_rate" &&
                  $2 + 0 < (base[$1] + 0) * 0.95)
                  printf "   !! ADAPTIVE REGRESSION %s: %s -> %s\n", \
                      $1, base[$1], $2
              if ($1 == "BENCH_server_p99_serve_us" &&
                  $2 + 0 > (base[$1] + 0) * 1.5)
                  printf "   !! SERVER REGRESSION %s: %s -> %s\n", \
                      $1, base[$1], $2
              if ($1 == "BENCH_server_tcp_p99_serve_us" &&
                  $2 + 0 > (base[$1] + 0) * 1.5)
                  printf "   !! SERVER REGRESSION %s: %s -> %s\n", \
                      $1, base[$1], $2
              if ($1 == "BENCH_server_cross_tenant_dedup" &&
                  $2 + 0 < (base[$1] + 0) * 0.95)
                  printf "   !! SERVER REGRESSION %s: %s -> %s\n", \
                      $1, base[$1], $2
              if ($1 ~ /^BENCH_micro_.*_speedup$/ &&
                  $2 + 0 < (base[$1] + 0) * 0.95)
                  printf "   !! KERNEL REGRESSION %s: %s -> %s\n", \
                      $1, base[$1], $2
          } }
        END { for (k in base) if (!(k in fresh)) {
                  printf "   BENCH %s: %s -> (removed)\n", k, base[k]
                  # A guarded key vanishing is itself a regression: a
                  # silently-skipped adaptive section must not pass.
                  if (k ~ /^BENCH_adaptive_/)
                      printf "   !! ADAPTIVE REGRESSION %s: %s -> (removed)\n", \
                          k, base[k]
                  if (k ~ /^BENCH_server_(p99_serve_us|cross_tenant_dedup|queue_wait_p99_us|tcp_p99_serve_us|reconnect_p50_ms|warm_boot_ms|post_bump_recovery_serves|post_bump_hit_rate)$/)
                      printf "   !! SERVER REGRESSION %s: %s -> (removed)\n", \
                          k, base[k]
                  # Telemetry keys vanishing means the serve-path
                  # instrumentation was silently dropped.
                  if (k ~ /^BENCH_serve_span_/)
                      printf "   !! SERVER REGRESSION %s: %s -> (removed)\n", \
                          k, base[k]
                  # A kernel disappearing from the micro bench means
                  # its speedup is no longer being watched.
                  if (k ~ /^BENCH_micro_/)
                      printf "   !! KERNEL REGRESSION %s: %s -> (removed)\n", \
                          k, base[k]
              } }' \
        <(echo __SECTION__;
          jq -r '.lines[] | select(startswith("BENCH_"))' "$base_json") \
        <(echo __SECTION__;
          jq -r '.lines[] | select(startswith("BENCH_"))' "$fresh_json") \
        | sort)
    [ -n "$bench_diff" ] && printf '%s\n' "$bench_diff"
    if printf '%s' "$bench_diff" | grep -q 'REGRESSION'; then
        status=1
    fi
done

# Benches present in the baseline but absent from the fresh run.
for base_json in "$BASE"/bench_*.json; do
    bench=$(basename "$base_json" .json)
    if [ ! -f "$FRESH/$bench.json" ]; then
        printf '%-36s %12s %12s %9s\n' "$bench" \
            "$(jq -r '.elapsed_seconds' "$base_json")" "-" "MISSING"
        status=1
    fi
done

exit "$status"
