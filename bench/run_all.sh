#!/usr/bin/env bash
# Run every bench binary and emit one JSON per bench with wall-clock
# timing and the bench's table output, so successive PRs can diff the
# BENCH_ perf trajectory.
#
# Usage:
#   bench/run_all.sh [build-dir] [out-dir]
#
# Defaults: build dir "build", results in "<build-dir>/bench_results".
# Requires jq. Respects QPC_BENCH_TIMEOUT (seconds, default 1800).
set -u

BUILD_DIR=${1:-build}
OUT_DIR=${2:-"$BUILD_DIR/bench_results"}
TIMEOUT=${QPC_BENCH_TIMEOUT:-1800}

BENCHES=(
    bench_table1_gate_library
    bench_table2_vqe_circuits
    bench_table3_qaoa_circuits
    bench_table5_realistic_pulses
    bench_fig2_clique_scaling
    bench_fig4_hyperparam_robustness
    bench_fig5_table4_vqe_speedups
    bench_fig6_table4_qaoa_speedups
    bench_fig7_latency_reduction
    bench_service_scaling
    bench_server_throughput
    bench_micro_kernels
)

# No optional benches at the moment (bench_micro_kernels used to need
# Google Benchmark; it is now a plain always-built binary).
OPTIONAL_BENCHES=()

if ! command -v jq >/dev/null; then
    echo "run_all.sh: jq is required to emit JSON" >&2
    exit 1
fi

mkdir -p "$OUT_DIR"
git_rev=$(git -C "$(dirname "$0")/.." rev-parse --short HEAD 2>/dev/null || echo unknown)
overall=0

for bench in "${BENCHES[@]}" "${OPTIONAL_BENCHES[@]}"; do
    bin="$BUILD_DIR/bench/$bench"
    if [ ! -x "$bin" ]; then
        case " ${OPTIONAL_BENCHES[*]} " in
          *" $bench "*)
            echo "== $bench: skipped (optional; not built on this machine)"
            ;;
          *)
            echo "run_all.sh: missing binary $bin (build with -DQPC_BUILD_BENCH=ON)" >&2
            overall=1
            ;;
        esac
        continue
    fi
    echo "== $bench"
    start=$(date +%s%N)
    output=$(timeout "$TIMEOUT" "$bin" 2>&1)
    status=$?
    end=$(date +%s%N)
    elapsed=$(awk -v s="$start" -v e="$end" 'BEGIN { printf "%.3f", (e - s) / 1e9 }')
    [ "$status" -ne 0 ] && overall=1
    jq -n \
        --arg bench "$bench" \
        --arg git_rev "$git_rev" \
        --arg elapsed "$elapsed" \
        --arg status "$status" \
        --arg output "$output" \
        '{bench: $bench,
          git_rev: $git_rev,
          elapsed_seconds: ($elapsed | tonumber),
          exit_status: ($status | tonumber),
          lines: ($output | split("\n"))}' \
        > "$OUT_DIR/$bench.json"
    echo "   ${elapsed}s (exit $status) -> $OUT_DIR/$bench.json"
done

# One merged summary for quick PR-over-PR diffing.
shopt -s nullglob
results=("$OUT_DIR"/bench_*.json)
if [ "${#results[@]}" -gt 0 ]; then
    jq -s 'map({bench, git_rev, elapsed_seconds, exit_status})' \
        "${results[@]}" > "$OUT_DIR/summary.json"
    echo "== summary -> $OUT_DIR/summary.json"
fi
exit "$overall"
