/**
 * @file
 * Regenerates Table 3: gate-based runtimes of the 32 QAOA MAXCUT
 * benchmark circuits (3-regular and Erdos-Renyi graphs on 6 and 8
 * nodes, p = 1..8), after optimization and nearest-neighbour mapping.
 *
 * The defining property — runtime linear in p, with slope set by the
 * graph family and width — must reproduce; absolute values differ
 * with the random graph instance and router.
 */

#include "bench/benchcommon.h"
#include "common/logging.h"
#include "common/table.h"
#include "transpile/durations.h"
#include "transpile/schedule.h"

using namespace qpc;
using namespace qpc::bench;

int
main()
{
    inform("Table 3: QAOA MAXCUT gate-based runtimes (ns)");

    // Paper's Table 3, indexed [family][p-1].
    const double paper[4][8] = {
        {113, 199, 277, 356, 434, 512, 590, 668},   // 3reg n6
        {84, 151, 223, 296, 368, 440, 512, 584},    // erdos n6
        {163, 365, 530, 695, 860, 1025, 1191, 1356}, // 3reg n8
        {157, 297, 443, 596, 750, 903, 1056, 1209},  // erdos n8
    };
    const struct
    {
        const char* family;
        int n;
        uint64_t seed;
    } families[] = {
        {"3reg", 6, 11}, {"erdos", 6, 12}, {"3reg", 8, 13},
        {"erdos", 8, 14}};

    const GateDurations durations = GateDurations::table1();
    TextTable table("Table 3 — QAOA gate-based runtimes (ns)");
    table.addRow({"Benchmark", "p", "Edges", "Gate-based (ns)",
                  "Paper (ns)"});

    for (int f = 0; f < 4; ++f) {
        const Graph graph = qaoaBenchmarkGraph(
            families[f].family, families[f].n, families[f].seed);
        for (int p = 1; p <= 8; ++p) {
            const Circuit circuit = qaoaBenchmarkCircuit(graph, p);
            fatalIf(circuit.numParams() != 2 * p,
                    "parameter count drifted");
            const double runtime = criticalPathNs(circuit, durations);
            table.addRow({qaoaBenchmarkName(families[f].family,
                                            families[f].n, p),
                          std::to_string(p),
                          std::to_string(graph.numEdges()),
                          fmtNs(runtime), fmtNs(paper[f][p - 1], 0)});
        }
    }
    table.print();

    inform("runtimes grow linearly in p within each family, as in "
           "the paper.");
    return 0;
}
