/**
 * @file
 * Regenerates Figure 5 and the VQE half of Table 4: pulse durations
 * for the five UCCSD molecules under all four compilation strategies,
 * plus the speedup factors relative to gate-based compilation.
 *
 * Shape to reproduce: Full GRAPE achieves roughly 1.5-2x on the
 * larger molecules (and far more on the tiny ones, whose whole
 * circuit fits a single GRAPE block); strict recovers a large share
 * of that advantage, and flexible nearly closes the remaining gap.
 */

#include <chrono>
#include <cstdio>

#include "bench/benchcommon.h"
#include "common/logging.h"
#include "common/table.h"
#include "partial/compiler.h"

using namespace qpc;
using namespace qpc::bench;

int
main()
{
    inform("Figure 5 / Table 4 (VQE): pulse durations by strategy");

    // Paper Table 4 (ns): gate, strict, flexible, grape per molecule.
    const double paper[5][4] = {
        {35.3, 15.0, 5.0, 3.1},
        {871.1, 307.0, 84.0, 19.3},
        {5308.3, 2596.5, 2503.8, 2461.7},
        {5490.4, 2842.7, 2770.8, 2752.0},
        {33842.2, 24781.4, 23546.7, 23546.7},
    };

    TextTable table("Table 4 (VQE) — pulse durations (ns)");
    table.addRow({"Molecule", "Gate", "Strict", "Flexible", "GRAPE",
                  "Speedup s/f/g", "Paper speedup s/f/g"});

    // Wall clock over the full compile sweep: the numeric hot paths
    // (expm, GRAPE, statevector) dominate it, so this key tracks the
    // end-to-end effect of kernel-level changes.
    const auto sweep_start = std::chrono::steady_clock::now();
    int index = 0;
    for (const MoleculeSpec& spec : vqeBenchmarks()) {
        const Circuit circuit = vqeBenchmarkCircuit(spec);
        PartialCompiler compiler(circuit);
        const std::vector<double> theta =
            nestedAngles(circuit.numParams(), 31);
        const std::vector<CompileReport> reports =
            compiler.compileAll(theta);

        const double gate = reports[0].pulseNs;
        const double strict_ns = reports[1].pulseNs;
        const double flex = reports[2].pulseNs;
        const double grape = reports[3].pulseNs;
        fatalIf(strict_ns > gate + 1e-6,
                spec.name, ": strict exceeded gate-based");
        fatalIf(grape > flex + 1e-6,
                spec.name, ": full GRAPE exceeded flexible");

        const std::string ours = fmtRatio(gate / strict_ns) + " / " +
                                 fmtRatio(gate / flex) + " / " +
                                 fmtRatio(gate / grape);
        const std::string theirs =
            fmtRatio(paper[index][0] / paper[index][1]) + " / " +
            fmtRatio(paper[index][0] / paper[index][2]) + " / " +
            fmtRatio(paper[index][0] / paper[index][3]);
        table.addRow({spec.name, fmtNs(gate), fmtNs(strict_ns),
                      fmtNs(flex), fmtNs(grape), ours, theirs});
        ++index;
    }
    const double sweep_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      sweep_start)
            .count();
    table.print();
    std::printf("BENCH_fig5_compile_wall_s=%.2f\n", sweep_seconds);

    inform("orderings gate >= strict >= flexible >= GRAPE hold for "
           "every molecule; see EXPERIMENTS.md for the per-molecule "
           "comparison against the paper.");
    return 0;
}
