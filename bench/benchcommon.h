/**
 * @file
 * Shared construction helpers for the benchmark binaries.
 *
 * Every bench regenerates one table or figure of the paper. The
 * helpers here build the benchmark circuits the same way the paper
 * does: construct, optimize (rotation merge + cancellation), map to
 * nearest-neighbour hardware, and re-optimize. Fixed seeds everywhere
 * for reproducibility.
 */

#ifndef QPC_BENCH_BENCHCOMMON_H
#define QPC_BENCH_BENCHCOMMON_H

#include <string>

#include "common/rng.h"
#include "ir/circuit.h"
#include "qaoa/graph.h"
#include "qaoa/qaoacircuit.h"
#include "transpile/mapping.h"
#include "transpile/passes.h"
#include "vqe/molecule.h"
#include "vqe/uccsd.h"

namespace qpc::bench {

/** Optimize, map to a topology, and re-optimize a circuit. */
inline Circuit
prepareCircuit(Circuit circuit, const Topology& topology)
{
    optimizeCircuit(circuit);
    MappingResult mapped = mapToTopology(circuit, topology);
    optimizeCircuit(mapped.circuit);
    return mapped.circuit;
}

/** Nearest-neighbour topology used for an n-qubit benchmark: the
 * paper's rectangular grid (2 x ceil(n/2)) for n >= 6, a line below. */
inline Topology
benchmarkTopology(int n)
{
    if (n >= 6 && n % 2 == 0)
        return Topology::grid(2, n / 2);
    return Topology::line(n);
}

/** Fully prepared VQE benchmark circuit for one molecule. */
inline Circuit
vqeBenchmarkCircuit(const MoleculeSpec& spec)
{
    return prepareCircuit(buildUccsdAnsatz(spec),
                          benchmarkTopology(spec.numQubits));
}

/** The graph of one QAOA benchmark family ("3reg" or "erdos"). */
inline Graph
qaoaBenchmarkGraph(const std::string& family, int n, uint64_t seed)
{
    Rng rng(seed);
    if (family == "3reg")
        return random3Regular(n, rng);
    return erdosRenyi(n, 0.5, rng);
}

/** Fully prepared QAOA benchmark circuit. */
inline Circuit
qaoaBenchmarkCircuit(const Graph& graph, int p)
{
    return prepareCircuit(buildQaoaCircuit(graph, p),
                          benchmarkTopology(graph.numNodes));
}

/** Nested random parametrization: same seed yields a shared prefix
 * across different parameter counts, so sweeps over p vary only the
 * appended rounds. */
inline std::vector<double>
nestedAngles(int count, uint64_t seed)
{
    Rng rng(seed);
    return rng.angles(count);
}

} // namespace qpc::bench

#endif // QPC_BENCH_BENCHCOMMON_H
