/**
 * @file
 * Compile-server throughput: serve-path latency percentiles and
 * cross-tenant block deduplication through the qpc-serverd wire
 * protocol.
 *
 * The paper's deployment story (Section 8.4) is a shared compilation
 * service: many variational workloads lease pulses from one
 * content-addressed cache, so a block synthesized for one user is a
 * lookup for every later one. This bench stands up a real
 * CompileServer on a unix-domain socket, connects four tenants, and
 * measures the two properties that make the daemon worth running:
 *
 *  - cross-tenant dedup: tenants B-D prepare and prewarm the same
 *    QAOA template tenant A already warmed; their prewarms should
 *    synthesize (close to) nothing;
 *  - interactive serve latency: all four tenants then run a hybrid
 *    optimizer loop of Serve frames concurrently over a warm
 *    quantized grid, and we report client-observed round-trip
 *    percentiles — protocol framing, scheduling, and cache lookup
 *    included.
 *
 * Machine-readable lines (picked up by bench/run_all.sh JSON):
 *   BENCH_server_p50_serve_us / BENCH_server_p99_serve_us
 *   BENCH_server_serves_per_sec
 *   BENCH_server_cross_tenant_dedup
 *   BENCH_server_cold_synth_runs / BENCH_server_warm_synth_runs
 *   BENCH_server_queue_wait_p99_us
 *   BENCH_server_tcp_p50_serve_us / BENCH_server_tcp_p99_serve_us
 *   BENCH_server_reconnect_p50_ms / BENCH_server_reconnect_retries
 *   BENCH_serve_span_* (server-side serve-path phase p50s)
 *   BENCH_server_warm_boot_ms (snapshot restore on a shared tier)
 *   BENCH_server_post_bump_recovery_serves
 *   BENCH_server_post_bump_hit_rate
 */

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "bench/benchcommon.h"
#include "common/logging.h"
#include "common/rng.h"
#include "server/client.h"
#include "server/server.h"
#include "telemetry/histogram.h"

using namespace qpc;
using namespace qpc::bench;

namespace {

constexpr int kTenants = 4;
constexpr int kThetaSet = 8;    ///< Distinct bindings per tenant loop.
constexpr int kWarmRounds = 1;  ///< Untimed warm-up passes.
constexpr int kTimedRounds = 8; ///< Timed passes over the theta set.

} // namespace

int
main()
{
    const std::string socket =
        "/tmp/qpc-bench-server-" + std::to_string(::getpid()) +
        ".sock";

    const auto makeOptions = [&socket] {
        CompileServerOptions options;
        options.socketPath = socket;
        options.tcpPort = -1; // ephemeral, for the TCP section
        options.service.numWorkers = 4;
        options.service.maxQueuedJobs = 64;
        options.service.quantization.enabled = true;
        options.service.quantization.bins = 1024;
        // The warmed grid (bins x rotation axes) plus the Fixed
        // blocks must stay resident for the dedup measurement to be
        // about sharing, not about eviction churn.
        options.service.cache.capacity = 16384;
        return options;
    };
    // unique_ptr so the reconnect section below can kill and restart
    // the daemon on the same socket path.
    auto server = std::make_unique<CompileServer>(makeOptions());
    server->start();

    // The shared template every tenant uploads: one QAOA benchmark
    // circuit, so the fixed blocks are identical across tenants.
    const Circuit circuit =
        qaoaBenchmarkCircuit(qaoaBenchmarkGraph("3reg", 6, 11), 2);

    // --- Cross-tenant dedup: A pays for synthesis, B-D reuse it. ---
    std::vector<CompileClient> clients(kTenants);
    std::vector<std::uint64_t> planIds(kTenants, 0);
    int numParams = 0;
    std::uint64_t coldSynth = 0, warmSynth = 0;
    for (int t = 0; t < kTenants; ++t) {
        CompileClient& c = clients[static_cast<std::size_t>(t)];
        fatalIf(!c.connectUnix(socket), "bench: connect failed");
        fatalIf(!c.hello("tenant-" + std::to_string(t)).has_value(),
                "bench: hello failed");
        const auto prep = c.prepareServing(circuit);
        fatalIf(!prep.has_value(), "bench: prepareServing failed");
        planIds[static_cast<std::size_t>(t)] = prep->planId;
        const auto warm = c.prewarm(prep->planId);
        fatalIf(!warm.has_value(), "bench: prewarm failed");
        if (t == 0)
            coldSynth = warm->synthRuns;
        else
            warmSynth += warm->synthRuns;
    }
    numParams = circuit.numParams();
    const double dedup =
        coldSynth == 0
            ? 0.0
            : 1.0 - static_cast<double>(warmSynth) /
                        (static_cast<double>(kTenants - 1) *
                         static_cast<double>(coldSynth));

    // --- Concurrent serve loop: 4 tenants, warm quantized grid. ---
    // Every tenant cycles a fixed set of bindings, so after one
    // untimed pass the timed rounds measure the steady-state hot
    // path: frame decode, priority gate, quantized cache lookup,
    // frame encode.
    // One shared histogram, concurrently recorded by all four tenant
    // loops — the same lock-light type the server exports, so the
    // BENCH percentiles and a scraped qpc_serve_us agree on math.
    LatencyHistogram latencyNs;
    const auto wallStart = std::chrono::steady_clock::now();
    std::vector<std::thread> loops;
    loops.reserve(kTenants);
    for (int t = 0; t < kTenants; ++t) {
        loops.emplace_back([&, t] {
            CompileClient& c = clients[static_cast<std::size_t>(t)];
            Rng rng(101 + static_cast<std::uint64_t>(t));
            std::vector<std::vector<double>> thetas;
            thetas.reserve(kThetaSet);
            for (int i = 0; i < kThetaSet; ++i)
                thetas.push_back(rng.angles(numParams));
            for (int round = 0; round < kWarmRounds + kTimedRounds;
                 ++round) {
                for (const auto& theta : thetas) {
                    const auto t0 =
                        std::chrono::steady_clock::now();
                    const auto reply = c.serve(
                        planIds[static_cast<std::size_t>(t)], theta);
                    fatalIf(!reply.has_value(),
                            "bench: serve failed");
                    const auto t1 =
                        std::chrono::steady_clock::now();
                    if (round >= kWarmRounds)
                        latencyNs.record(static_cast<std::uint64_t>(
                            std::chrono::duration_cast<
                                std::chrono::nanoseconds>(t1 - t0)
                                .count()));
                }
            }
        });
    }
    for (auto& th : loops)
        th.join();
    const double wallSeconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - wallStart)
            .count();

    const HistogramSnapshot latency = latencyNs.snapshot();
    const double p50 = latency.percentileNs(50) / 1e3;
    const double p99 = latency.percentileNs(99) / 1e3;
    const double servesPerSec =
        wallSeconds > 0.0 ? static_cast<double>(latency.count) /
                                wallSeconds
                          : 0.0;

    // Server-side serve-path phase distributions for the same run:
    // where the round-trip time went once the frame arrived.
    const ServiceTelemetry telemetry = server->service().telemetry();

    // --- TCP section: the same warm serve loop over loopback TCP ---
    // with TCP_NODELAY on both ends. Without it, Nagle + delayed-ACK
    // adds ~40 ms to every small request/reply pair and this
    // percentile gives it away instantly.
    LatencyHistogram tcpNs;
    {
        CompileClient c;
        fatalIf(!c.connectTcp(server->boundTcpPort()),
                "bench: TCP connect failed");
        fatalIf(!c.hello("tenant-0").has_value(),
                "bench: TCP hello failed");
        Rng rng(211);
        std::vector<std::vector<double>> thetas;
        for (int i = 0; i < kThetaSet; ++i)
            thetas.push_back(rng.angles(numParams));
        for (int round = 0; round < kWarmRounds + kTimedRounds;
             ++round) {
            for (const auto& theta : thetas) {
                const auto t0 = std::chrono::steady_clock::now();
                const auto reply = c.serve(planIds[0], theta);
                fatalIf(!reply.has_value(), "bench: TCP serve failed");
                const auto t1 = std::chrono::steady_clock::now();
                if (round >= kWarmRounds)
                    tcpNs.record(static_cast<std::uint64_t>(
                        std::chrono::duration_cast<
                            std::chrono::nanoseconds>(t1 - t0)
                            .count()));
            }
        }
    }
    const HistogramSnapshot tcpLatency = tcpNs.snapshot();

    for (auto& c : clients)
        c.close();

    // --- Reconnect section: kill the daemon mid-loop, restart it on
    // the same socket, and measure the client's transparent session
    // re-establishment (re-dial + re-Hello + plan re-prepare).
    ClientOptions ropts;
    ropts.deadlineMs = 10000;
    ropts.maxRetries = 50;
    ropts.backoffBaseMs = 5;
    ropts.backoffMaxMs = 50;
    CompileClient resilient(ropts);
    fatalIf(!resilient.connectUnix(socket),
            "bench: reconnect-section connect failed");
    fatalIf(!resilient.hello("tenant-reconnect").has_value(),
            "bench: reconnect-section hello failed");
    const auto rprep = resilient.prepareServing(circuit);
    fatalIf(!rprep.has_value(),
            "bench: reconnect-section prepare failed");
    Rng rrng(307);
    fatalIf(!resilient.serve(rprep->planId, rrng.angles(numParams))
                 .has_value(),
            "bench: reconnect-section serve failed");
    server->stop();
    server = std::make_unique<CompileServer>(makeOptions());
    server->start();
    fatalIf(!resilient.serve(rprep->planId, rrng.angles(numParams))
                 .has_value(),
            "bench: serve through restart failed");
    const ClientStats rstats = resilient.clientStats();
    resilient.close();

    server->stop();

    // --- Fleet section: warm replica boot + calibration-epoch bump.
    // One daemon prewarms a plan into a shared disk tier and
    // snapshots; a cold replica restores from the snapshot against
    // the same tier (warm boot), then rides through a BumpEpoch: how
    // many serves until the re-keyed, re-prewarmed grid is fully warm
    // again, and what fraction of post-bump serves hit.
    const std::string tier =
        "/tmp/qpc-bench-tier-" + std::to_string(::getpid());
    std::filesystem::remove_all(tier);
    std::filesystem::create_directories(tier);
    const auto fleetOptions = [&] {
        CompileServerOptions options = makeOptions();
        options.service.cache.diskDir = tier;
        return options;
    };

    ServingSnapshot snapshot;
    {
        CompileServer seeder(fleetOptions());
        seeder.start();
        CompileClient c;
        fatalIf(!c.connectUnix(socket), "bench: fleet connect failed");
        fatalIf(!c.hello("fleet").has_value(),
                "bench: fleet hello failed");
        const auto prep = c.prepareServing(circuit);
        fatalIf(!prep.has_value(), "bench: fleet prepare failed");
        fatalIf(!c.prewarm(prep->planId).has_value(),
                "bench: fleet prewarm failed");
        snapshot = seeder.snapshotServing();
        seeder.stop();
    }

    CompileServer replica(fleetOptions());
    const auto bootStart = std::chrono::steady_clock::now();
    const SnapshotRestoreReport restore =
        replica.restoreServing(snapshot);
    const double warmBootMs =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - bootStart)
            .count();
    fatalIf(restore.plans == 0, "bench: snapshot restore was empty");
    replica.start();

    constexpr int kPostBumpServes = 48;
    int recoveryServes = kPostBumpServes;
    double postBumpHitRate = 0.0;
    {
        CompileClient c;
        fatalIf(!c.connectUnix(socket),
                "bench: replica connect failed");
        fatalIf(!c.hello("fleet").has_value(),
                "bench: replica hello failed");
        const auto prep = c.prepareServing(circuit);
        fatalIf(!prep.has_value(), "bench: replica prepare failed");
        Rng rng(401);
        fatalIf(!c.serve(prep->planId, rng.angles(numParams))
                     .has_value(),
                "bench: replica serve failed");
        fatalIf(!c.bumpEpoch().has_value(), "bench: bump failed");
        std::uint64_t hits = 0, misses = 0;
        bool recovered = false;
        for (int i = 0; i < kPostBumpServes; ++i) {
            // Paced like an optimizer iteration (circuit execution
            // between serves), so the rolling re-prewarm has the same
            // window to win the race it gets in production.
            std::this_thread::sleep_for(
                std::chrono::milliseconds(2));
            const auto reply =
                c.serve(prep->planId, rng.angles(numParams));
            fatalIf(!reply.has_value(),
                    "bench: post-bump serve failed");
            hits += reply->cacheHits + reply->quantHits;
            misses += reply->cacheMisses + reply->quantMisses +
                      reply->exactServes;
            if (!recovered && reply->cacheMisses == 0 &&
                reply->quantMisses == 0) {
                recoveryServes = i + 1;
                recovered = true;
            }
        }
        postBumpHitRate =
            hits + misses
                ? static_cast<double>(hits) /
                      static_cast<double>(hits + misses)
                : 0.0;
    }
    replica.stop();
    std::filesystem::remove_all(tier);

    std::printf("\ncompile-server throughput (%d tenants, %llu timed "
                "serves)\n",
                kTenants,
                static_cast<unsigned long long>(latency.count));
    std::printf("  cold prewarm synth runs   %llu\n",
                static_cast<unsigned long long>(coldSynth));
    std::printf("  warm prewarm synth runs   %llu (tenants B-D "
                "combined)\n",
                static_cast<unsigned long long>(warmSynth));
    std::printf("  cross-tenant dedup        %.4f\n", dedup);
    std::printf("  serve p50                 %.1f us\n", p50);
    std::printf("  serve p99                 %.1f us\n", p99);
    std::printf("  throughput                %.0f serves/s\n",
                servesPerSec);
    std::printf("  tcp serve p50             %.1f us\n",
                tcpLatency.percentileNs(50) / 1e3);
    std::printf("  tcp serve p99             %.1f us\n",
                tcpLatency.percentileNs(99) / 1e3);
    std::printf("  reconnect p50             %.2f ms (%llu retries)\n",
                rstats.reconnectNs.percentileNs(50) / 1e6,
                static_cast<unsigned long long>(rstats.retries));
    std::printf("  warm replica boot         %.2f ms (%llu blocks, "
                "hit rate %.3f)\n",
                warmBootMs,
                static_cast<unsigned long long>(restore.uniqueBlocks),
                restore.hitRate());
    std::printf("  post-bump recovery        %d serves (hit rate "
                "%.3f over %d)\n",
                recoveryServes, postBumpHitRate, kPostBumpServes);

    std::printf("BENCH_server_cold_synth_runs=%llu\n",
                static_cast<unsigned long long>(coldSynth));
    std::printf("BENCH_server_warm_synth_runs=%llu\n",
                static_cast<unsigned long long>(warmSynth));
    std::printf("BENCH_server_cross_tenant_dedup=%.4f\n", dedup);
    std::printf("BENCH_server_p50_serve_us=%.2f\n", p50);
    std::printf("BENCH_server_p99_serve_us=%.2f\n", p99);
    std::printf("BENCH_server_serves_per_sec=%.1f\n", servesPerSec);
    std::printf("BENCH_server_queue_wait_p99_us=%.2f\n",
                telemetry.queueWaitNs.percentileNs(99) / 1e3);
    std::printf("BENCH_server_tcp_p50_serve_us=%.2f\n",
                tcpLatency.percentileNs(50) / 1e3);
    std::printf("BENCH_server_tcp_p99_serve_us=%.2f\n",
                tcpLatency.percentileNs(99) / 1e3);
    std::printf("BENCH_server_reconnect_p50_ms=%.3f\n",
                rstats.reconnectNs.percentileNs(50) / 1e6);
    std::printf("BENCH_server_reconnect_retries=%llu\n",
                static_cast<unsigned long long>(rstats.retries));
    std::printf("BENCH_serve_span_serve_p50_us=%.2f\n",
                telemetry.serveNs.percentileNs(50) / 1e3);
    std::printf("BENCH_serve_span_cache_get_p50_us=%.2f\n",
                telemetry.cacheGetNs.percentileNs(50) / 1e3);
    std::printf("BENCH_serve_span_synthesis_p50_us=%.2f\n",
                telemetry.synthNs.percentileNs(50) / 1e3);
    std::printf("BENCH_server_warm_boot_ms=%.2f\n", warmBootMs);
    std::printf("BENCH_server_warm_boot_hit_rate=%.4f\n",
                restore.hitRate());
    std::printf("BENCH_server_post_bump_recovery_serves=%d\n",
                recoveryServes);
    std::printf("BENCH_server_post_bump_hit_rate=%.4f\n",
                postBumpHitRate);
    return 0;
}
